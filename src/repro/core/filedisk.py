"""A block device backed by a real file.

:class:`FileDiskArray` stores every block's payload as serialized bytes
in one ordinary file, while inheriting **all** accounting from
:class:`~repro.core.disk.DiskArray` — reads, writes, parallel steps,
stalls, fault injection, torn writes, and checksums run through the
exact same code paths, so every counter is bit-compatible with the
dict-backed array on any workload.  Only the four storage hooks differ:
``_load`` seeks and decodes, ``_store`` encodes and writes real bytes.

The point is honest wall-clock: the simulated-step axis says how an
algorithm *would* behave on 1998 hardware; running the same algorithm
unchanged on a :class:`FileDiskArray` adds a second axis — actual bytes
through an actual file — so the benchmark suite can report both.  Typed
payloads (:mod:`repro.core.records`) serialize via ``tobytes()``; object
payloads fall back to pickle.

Layout: blocks live at arbitrary extents ``(offset, capacity, length)``
in the data file, tracked in memory and persisted to a JSON sidecar
(``<path>.meta``) by :meth:`sync_metadata`.  Rewrites reuse the extent
when the new image fits, else take a best-fit free extent, else append.
Capacities are rounded up so the common rewrite-in-place case never
relocates.  :meth:`sync_metadata` models an fsync'd commit point: a
process that "crashes" after it can :meth:`open` the file again and see
exactly the blocks the metadata recorded — the crash/restart story the
fault suite exercises.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Any, Dict, List, Optional, Sequence, Tuple

from .disk import Block, DiskArray
from .exceptions import ConfigurationError
from .records import decode_block, encode_block

#: capacity slack factor for fresh extents — room for the slightly
#: larger re-encodings a rewritten block may need before relocating.
_SLACK = 1.25


class FileDiskArray(DiskArray):
    """A :class:`~repro.core.disk.DiskArray` whose blocks live in a real
    file.

    Args:
        block_capacity: records per block (the model parameter ``B``).
        num_disks: simulated disk count ``D`` — purely an accounting
            dimension here (one file holds all stripes), so parallel
            steps are counted exactly as on the in-memory array.
        path: data file path.  Created if missing; a temporary file is
            used when omitted (removed by :meth:`close`).

    Use :meth:`sync_metadata` to commit the block table and
    :meth:`open` to reattach after a restart.  :meth:`close` releases
    the file handle (and deletes an unnamed temporary).
    """

    def __init__(
        self,
        block_capacity: int,
        num_disks: int = 1,
        path: Optional[str] = None,
    ):
        super().__init__(block_capacity, num_disks)
        if path is None:
            fd, path = tempfile.mkstemp(prefix="repro-disk-",
                                        suffix=".blocks")
            os.close(fd)
            self._owns_file = True
        else:
            self._owns_file = False
        self.path = path
        if not os.path.exists(path):
            # em: ok(EM002) this IS the device layer; the file is the disk
            with open(path, "wb"):
                pass
        # "r+b", not append mode: extents are rewritten in place.
        # em: ok(EM002) this IS the device layer; the file is the disk
        self._file = open(path, "r+b")
        self._file.seek(0, os.SEEK_END)
        self._high_water = self._file.tell()
        # block_id -> (offset, capacity, length) of its current extent;
        # None for an allocated-but-never-written (empty) block.
        self._extents: Dict[int, Optional[Tuple[int, int, int]]] = {}
        # Reusable extents of freed/relocated blocks: (capacity, offset).
        self._free: List[Tuple[int, int]] = []

    # ------------------------------------------------------------------
    # storage hooks (see DiskArray)
    # ------------------------------------------------------------------
    def _new_slot(self) -> Any:
        # The base class stores this in ``_blocks`` purely for
        # allocation bookkeeping; payload bytes live in the file.
        return None

    def _pre_write(self, block_id: int, records: Any) -> Block:
        # Serialization *is* the defensive copy here: ``_store`` turns
        # the payload into fresh bytes and retains no reference, so the
        # base class's in-memory copy would be pure waste.  Fault plans
        # still go through the base path (the torn prefix must be an
        # independent object).
        if self._injector is None:
            return records
        return super()._pre_write(block_id, records)

    def _maybe_tear(self, block_id: int, records: Any) -> Block:
        # Same reasoning for the parallel-write wave.
        if self._injector is None:
            return records
        return super()._maybe_tear(block_id, records)

    def _load(self, block_id: int) -> Block:
        if block_id not in self._blocks:
            raise KeyError(block_id)
        extent = self._extents.get(block_id)
        if extent is None:
            return []
        offset, _, length = extent
        self._file.seek(offset)
        data = self._file.read(length)
        if len(data) != length:
            raise ConfigurationError(
                f"block {block_id}: file {self.path!r} truncated "
                f"(wanted {length} bytes at {offset}, got {len(data)})"
            )
        return decode_block(data)

    def _store(self, block_id: int, payload: Block) -> None:
        data = encode_block(payload)
        offset, capacity = self._place(block_id, len(data))
        self._file.seek(offset)
        self._file.write(data)
        self._extents[block_id] = (offset, capacity, len(data))

    def _export(self, payload: Block) -> Block:
        # ``_load`` decoded a fresh object; no defensive copy needed.
        return payload

    # ------------------------------------------------------------------
    # extent management
    # ------------------------------------------------------------------
    def _place(self, block_id: int, size: int) -> Tuple[int, int]:
        """An extent ``(offset, capacity)`` able to hold ``size`` bytes:
        the block's current extent when it fits, else the best-fitting
        free extent, else fresh space at the end of the file."""
        current = self._extents.get(block_id)
        if current is not None:
            offset, capacity, _ = current
            if size <= capacity:
                return offset, capacity
            self._free.append((capacity, offset))
        best = None
        for index, (capacity, _) in enumerate(self._free):
            if capacity >= size and (best is None
                                     or capacity < self._free[best][0]):
                best = index
        if best is not None:
            capacity, offset = self._free.pop(best)
            return offset, capacity
        capacity = max(size, int(size * _SLACK))
        offset = self._high_water
        self._high_water += capacity
        return offset, capacity

    def free(self, block_id: int) -> None:
        extent = self._extents.pop(block_id, None)
        super().free(block_id)
        if extent is not None:
            offset, capacity, _ = extent
            self._free.append((capacity, offset))

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def sync_metadata(self) -> None:
        """Flush data bytes and atomically commit the block table to the
        ``<path>.meta`` sidecar — the durability point a later
        :meth:`open` recovers to (a checkpointed sort calls this when it
        commits its manifest)."""
        self._file.flush()
        os.fsync(self._file.fileno())
        meta = {
            "block_capacity": self.block_capacity,
            "num_disks": self.num_disks,
            "next_id": self._next_id,
            "rr_next_disk": self._rr_next_disk,
            "high_water": self._high_water,
            "allocated_high_water": self._allocated_high_water,
            "checksums_enabled": self.checksums_enabled,
            "blocks": {
                str(block_id): self._extents.get(block_id)
                for block_id in self._blocks
            },
            "disk_of": {str(b): d for b, d in self._disk_of.items()},
            "sums": {str(b): s for b, s in self._sums.items()},
            "free": self._free,
        }
        tmp_path = self.path + ".meta.tmp"
        # em: ok(EM002) device metadata sidecar, not model-visible data
        with open(tmp_path, "w", encoding="utf-8") as handle:
            json.dump(meta, handle)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, self.path + ".meta")

    @classmethod
    def open(cls, path: str) -> "FileDiskArray":
        """Reattach to a file as of its last :meth:`sync_metadata`.

        Blocks written after that commit are simply absent from the
        table — exactly a machine that lost its page cache — so a resume
        re-runs the uncommitted work.  I/O counters start at zero (the
        restarted process has performed no transfers yet).
        """
        meta_path = path + ".meta"
        # em: ok(EM002) device metadata sidecar, not model-visible data
        with open(meta_path, "r", encoding="utf-8") as handle:
            meta = json.load(handle)
        disk = cls(meta["block_capacity"], meta["num_disks"], path=path)
        disk._next_id = meta["next_id"]
        disk._rr_next_disk = meta["rr_next_disk"]
        disk._high_water = meta["high_water"]
        disk._allocated_high_water = meta["allocated_high_water"]
        disk.checksums_enabled = meta["checksums_enabled"]
        for block_str, extent in meta["blocks"].items():
            block_id = int(block_str)
            disk._blocks[block_id] = None
            disk._extents[block_id] = \
                tuple(extent) if extent is not None else None
        disk._disk_of = {int(b): d for b, d in meta["disk_of"].items()}
        disk._sums = {int(b): s for b, s in meta["sums"].items()}
        disk._free = [tuple(entry) for entry in meta["free"]]
        return disk

    def close(self, remove: Optional[bool] = None) -> None:
        """Close the file handle.  ``remove`` deletes the data and
        metadata files; defaults to True for unnamed temporaries."""
        if self._file.closed:
            return
        self._file.close()
        if remove is None:
            remove = self._owns_file
        if remove:
            for target in (self.path, self.path + ".meta"):
                try:
                    os.unlink(target)
                except FileNotFoundError:
                    pass

    def __enter__(self) -> "FileDiskArray":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"FileDiskArray(B={self.block_capacity}, D={self.num_disks}, "
            f"path={self.path!r}, blocks={len(self._blocks)})"
        )

"""Text indexing: external suffix-array construction."""

from .suffix_array import (
    search_suffix_array,
    suffix_array,
    suffix_array_naive,
)

__all__ = ["suffix_array", "suffix_array_naive", "search_suffix_array"]

"""External suffix-array construction by prefix doubling.

Text indexing is one of the survey's two motivating applications
(suffix trees over corpora far larger than memory).  The index
construction itself is a batched problem: Manber–Myers prefix doubling
reduces suffix sorting to ``O(log N)`` rounds of sorting fixed-size
tuples, so the whole build runs in ``O(Sort(N) · log N)`` I/Os with
nothing but the library's external sorts and merge joins — no random
access to the text at all.

Round ``k`` knows, for every position, the rank of its length-``k``
prefix; joining each position ``i`` with position ``i + k`` (a shifted
merge join) yields rank pairs whose sorted order is the order of
length-``2k`` prefixes.  Rounds end when all ranks are distinct.

:func:`suffix_array` accepts any string (or sequence of comparable
symbols); :func:`suffix_array_naive` is the quadratic in-memory
reference used by the tests.
"""

from __future__ import annotations

from typing import Any, List, Sequence

from ..analysis.sanitizer import io_bound
from ..core.bounds import scan_io, sort_io
from ..core.exceptions import ConfigurationError
from ..core.machine import Machine
from ..core.stream import FileStream
from ..pipeline.sorter import Sorter
from ..sort.merge import external_merge_sort

_MISSING = -1  # rank of the empty suffix beyond the text end


def _sa_theory(machine: Machine, n: int) -> float:
    """``O(Sort(N))`` per doubling round, ``ceil(log2 N)`` rounds."""
    if n <= 1:
        return 0.0
    rounds = max(1, n.bit_length())
    return rounds * (3 * sort_io(n, machine.M, machine.B, machine.D)
                     + 6 * scan_io(n, machine.B, machine.D))


@io_bound(_sa_theory, factor=4.0)
def suffix_array(machine: Machine, text: Sequence[Any]) -> List[int]:
    """Return the suffix array of ``text``: starting positions of all
    suffixes in lexicographic order.

    Cost: ``O(Sort(N))`` per doubling round, ``ceil(log2 N)`` rounds
    worst case (fewer when ranks separate early).  The result (N
    integers) is returned in memory; the working data stays on streams.
    """
    n = len(text)
    if n == 0:
        return []
    if n == 1:
        return [0]

    # Round 0: rank positions by their first symbol.
    singles = FileStream(machine, name="sa/singles")
    for position, symbol in enumerate(text):
        singles.append((symbol, position))
    singles.finalize()
    # em: ok(EM103) fusion candidate: single-scan consumer, future Sorter refactor
    ordered = external_merge_sort(
        machine, singles, key=lambda r: r[0], keep_input=False
    )
    ranks = FileStream(machine, name="sa/ranks")  # (position, rank)
    first = True
    previous_symbol = None
    rank = -1
    distinct = 0
    for symbol, position in ordered:
        if first or symbol != previous_symbol:
            rank += 1
            distinct += 1
            previous_symbol = symbol
            first = False
        ranks.append((position, rank))
    ordered.delete()
    ranks.finalize()
    ranks = external_merge_sort(
        machine, ranks, key=lambda r: r[0], keep_input=False
    )

    k = 1
    while distinct < n and k < 2 * n:
        ranks, distinct = _double(machine, ranks, n, k)
        k *= 2

    # ranks is sorted by position; the suffix array inverts it.
    result: List[int] = [0] * n
    for position, rank in ranks:
        # em: ok(EM005) the N-integer suffix array is the declared
        # in-RAM result (see docstring); working data stays on streams
        result[rank] = position
    ranks.delete()
    return result


def _double(machine: Machine, ranks: FileStream, n: int, k: int):
    """One prefix-doubling round.

    ``ranks`` holds ``(position, rank_k)`` sorted by position; returns
    ``(new_ranks, distinct_count)`` with ranks of length-``2k`` prefixes,
    again sorted by position.
    """
    # Both of the round's sorts are pipelined: the (rank-pair,
    # position) tuples and the new ranks are pushed straight into run
    # formation and pulled straight out of the final merge, so neither
    # ever exists as a stream on disk.  The shifted copy needs no sort
    # at all — ``(position - k, rank)`` comes out of a second reader
    # over ``ranks`` already in position order — so the round's only
    # materialized stream is the returned by-position ranks, and no
    # temporary outlives the round.
    width = max(1, machine.m - 4)
    with Sorter(machine, key=lambda r: r[0], name="sa/pairs",
                final_fan_in=width) as by_pair:
        # Merge the position scan against the shifted scan to pair each
        # position's rank with the rank at distance k.
        shift_iter = iter(ranks)
        position_iter = iter(ranks)
        try:
            shifted = ((p - k, r) for p, r in shift_iter if p - k >= 0)
            shift_entry = next(shifted, None)
            for position, rank in position_iter:
                while shift_entry is not None \
                        and shift_entry[0] < position:
                    shift_entry = next(shifted, None)
                if shift_entry is not None \
                        and shift_entry[0] == position:
                    second = shift_entry[1]
                else:
                    second = _MISSING
                by_pair.push(((rank, second), position))
        finally:
            shift_iter.close()
            position_iter.close()
        ranks.delete()

        with Sorter(machine, key=lambda r: r[0], name="sa/by-position",
                    final_fan_in=width) as by_position:
            previous_pair = None
            rank = -1
            distinct = 0
            for pair, position in by_pair.finish():
                if previous_pair is None or pair != previous_pair:
                    rank += 1
                    distinct += 1
                    previous_pair = pair
                by_position.push((position, rank))
            new_ranks = FileStream(machine, name="sa/ranks")
            try:
                for record in by_position.finish():
                    new_ranks.append(record)
            except BaseException:
                new_ranks.delete()
                raise
    return new_ranks.finalize(), distinct


# em: ok(EM003) in-memory reference oracle for tests, outside the model
def suffix_array_naive(text: Sequence[Any]) -> List[int]:
    """Quadratic in-memory reference: sort positions by suffix."""
    # em: ok(EM004) in-memory reference oracle for tests
    return sorted(range(len(text)), key=lambda i: tuple(text[i:]))


# em: ok(EM003) in-memory query helper over a built index, no machine
def search_suffix_array(
    text: Sequence[Any],
    sa: List[int],
    pattern: Sequence[Any],
) -> List[int]:
    """All occurrences of ``pattern`` in ``text`` via binary search on
    the suffix array (the classic ``O(|p|·log N + occ)`` query).

    In-memory helper for working with a built index; returns sorted
    starting positions.
    """
    if len(pattern) == 0:
        return list(range(len(text)))

    def suffix_starts_with(position: int) -> int:
        """-1 if suffix < pattern, 0 if prefix-match, 1 if greater."""
        chunk = tuple(text[position:position + len(pattern)])
        target = tuple(pattern)
        if chunk == target:
            return 0
        return -1 if chunk < target else 1

    # Lower bound.
    low, high = 0, len(sa)
    while low < high:
        mid = (low + high) // 2
        if suffix_starts_with(sa[mid]) < 0:
            low = mid + 1
        else:
            high = mid
    first = low
    # Upper bound.
    low, high = first, len(sa)
    while low < high:
        mid = (low + high) // 2
        if suffix_starts_with(sa[mid]) == 0:
            low = mid + 1
        else:
            high = mid
    return sorted(sa[first:low])  # em: ok(EM004) occ result positions

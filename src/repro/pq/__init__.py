"""External priority queues.

* :class:`~repro.pq.sequence_heap.ExternalPriorityQueue` — batched,
  amortized ``O((1/B) log_{M/B}(N/B))`` I/Os per operation.
* :class:`~repro.pq.btree_pq.BTreePriorityQueue` — the ``Θ(log_B N)``
  per-operation baseline.
"""

from .btree_pq import BTreePriorityQueue
from .sequence_heap import ExternalPriorityQueue

__all__ = ["ExternalPriorityQueue", "BTreePriorityQueue"]

"""External priority queue (sequence heap).

The survey's external priority queues achieve ``O((1/B) log_{M/B}(N/B))``
amortized I/Os per operation — the per-record sorting cost — by batching:
inserts accumulate in an in-memory heap; when it fills, its contents are
written as one sorted run; runs are organized into levels of at most ``k``
runs each, and a level that fills is k-way merged into a single run one
level up.  ``delete_min`` takes the minimum over the in-memory heap and
the head record of every on-disk run.

This is the structure behind time-forward processing and external Dijkstra
in the survey; a B-tree used as a priority queue pays ``Θ(log_B N)`` I/Os
per operation instead, which the priority-queue experiment quantifies.
"""

from __future__ import annotations

import heapq
from itertools import chain
from typing import Any, Iterator, List, Optional, Tuple

from ..core.exceptions import ConfigurationError, EMError
from ..core.machine import Machine
from ..core.stream import FileStream
from ..sort.merge import LoserTree


class _Run:
    """A sorted on-disk run with a one-record lookahead head.

    An open run pins one ``B``-record reader frame (the stream reader
    acquires it on the first ``next``); the frame is released when the
    reader is exhausted — or deterministically by :meth:`close`.
    """

    __slots__ = ("stream", "reader", "head")

    def __init__(self, stream: FileStream):
        self.stream = stream
        self.reader = iter(stream)
        self.head: Optional[tuple] = next(self.reader, None)

    def advance(self) -> None:
        self.head = next(self.reader, None)
        if self.head is None:
            self.stream.delete()

    def records(self) -> Iterator[tuple]:
        """All remaining records including the head."""
        if self.head is None:
            return iter(())
        return chain([self.head], self.reader)

    def close(self) -> None:
        """Release the reader frame (generator ``close`` runs the
        reader's ``finally``) and free the run's blocks.  Idempotent;
        safe mid-iteration and on never-started runs."""
        closer = getattr(self.reader, "close", None)
        if closer is not None:
            closer()
        self.stream.delete()
        self.head = None


class ExternalPriorityQueue:
    """A min-priority queue of ``(priority, item)`` pairs on disk.

    Args:
        machine: the external-memory machine.
        group_arity: maximum runs per level before the level is merged
            upward; defaults to ``max(2, m//4)``.  The default is set by
            frame accounting, not merge speed: a full-level merge holds
            ``group_arity`` reader frames plus one writer frame *on top
            of* the insertion heap's ~``m/4`` frames and whatever
            resident frames the caller holds (e.g. an open block file),
            and with eager merging up to two levels of runs can be open
            at once — ``m//4`` keeps all of that inside ``m``, where the
            tempting ``m//2 - 1`` (one frame per run of a maximal merge)
            overflows.
        insertion_capacity: records held in the in-memory insertion heap;
            defaults to ``max(2, M//4)`` (reserved from the machine
            budget for the queue's lifetime — call :meth:`close` to
            release it).

    Every open on-disk run pins one ``B``-record reader frame, charged
    to the machine's budget like any other frame.  When fewer than two
    spare frames remain (the next spill needs a writer frame and then a
    reader frame), the queue merges a level *early* — run proliferation
    therefore converts into merge I/O instead of a memory-budget
    overflow, and peak memory stays at most ``M``.

    Ties between equal priorities are broken by insertion order (FIFO).
    """

    def __init__(
        self,
        machine: Machine,
        group_arity: Optional[int] = None,
        insertion_capacity: Optional[int] = None,
    ):
        self.machine = machine
        self.group_arity = (
            group_arity if group_arity is not None else max(2, machine.m // 4)
        )
        if self.group_arity < 2:
            raise ConfigurationError(
                f"group arity must be >= 2, got {self.group_arity}"
            )
        self.insertion_capacity = (
            insertion_capacity
            if insertion_capacity is not None
            else max(2, machine.M // 4)
        )
        machine.budget.acquire(self.insertion_capacity)
        self._heap: List[tuple] = []
        self._levels: List[List[_Run]] = []
        self._sequence = 0
        self._size = 0
        self._closed = False

    # ------------------------------------------------------------------
    def insert(self, priority: Any, item: Any = None) -> None:
        """Insert ``item`` with ``priority``; amortized ``O((1/B)·log)``
        I/Os."""
        self._check_open()
        heapq.heappush(self._heap, (priority, self._sequence, item))
        self._sequence += 1
        self._size += 1
        if len(self._heap) >= self.insertion_capacity:
            self._spill_heap()

    def delete_min(self) -> Tuple[Any, Any]:
        """Remove and return the ``(priority, item)`` pair with the
        smallest priority (FIFO among equal priorities).

        Raises:
            EMError: when the queue is empty.
        """
        self._check_open()
        if self._size == 0:
            raise EMError("delete_min on an empty priority queue")
        best_run: Optional[_Run] = None
        best: Optional[tuple] = self._heap[0] if self._heap else None
        for level in self._levels:
            for run in level:
                if run.head is not None and (
                    best is None or run.head < best
                ):
                    best = run.head
                    best_run = run
        assert best is not None
        if best_run is None:
            heapq.heappop(self._heap)
        else:
            best_run.advance()
            if best_run.head is None:
                # Prune the exhausted run so head scans stay short and its
                # reader frame is released.
                for level in self._levels:
                    if best_run in level:
                        level.remove(best_run)
                        break
        self._size -= 1
        priority, _, item = best
        return priority, item

    def peek_min(self) -> Tuple[Any, Any]:
        """Return (without removing) the minimum ``(priority, item)``."""
        self._check_open()
        if self._size == 0:
            raise EMError("peek_min on an empty priority queue")
        best = self._heap[0] if self._heap else None
        for level in self._levels:
            for run in level:
                if run.head is not None and (best is None or run.head < best):
                    best = run.head
        priority, _, item = best
        return priority, item

    def __len__(self) -> int:
        return self._size

    @property
    def num_levels(self) -> int:
        """Number of on-disk run levels."""
        return len(self._levels)

    def close(self) -> None:
        """Release the insertion heap's memory reservation and delete all
        on-disk runs.  The queue becomes unusable."""
        if self._closed:
            return
        # Flip the flag before any fallible work: if a run.close() below
        # raises mid-way, a retried close() must pass the guard as a
        # no-op instead of releasing the reservation a second time and
        # corrupting the budget ledger (EM303).
        self._closed = True
        try:
            for level in self._levels:
                for run in level:
                    # Deterministic release: closing the reader returns
                    # its pinned frame immediately instead of waiting
                    # for GC.
                    run.close()
        finally:
            self.machine.budget.release(self.insertion_capacity)
            self._levels = []
            self._heap = []

    def __enter__(self) -> "ExternalPriorityQueue":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    def _check_open(self) -> None:
        if self._closed:
            raise EMError("priority queue has been closed")

    def _spill_heap(self) -> None:
        """Write the insertion heap as a sorted run into level 0."""
        self._ensure_spill_frames()
        # em: ok(EM004) insertion heap ≤ insertion_capacity, reserved
        # for the queue's lifetime at construction
        records = sorted(self._heap)
        self._heap = []
        stream = FileStream(self.machine, name="pq/run")
        for record in records:
            stream.append(record)
        stream.finalize()
        self._add_run(0, _Run(stream))

    def _ensure_spill_frames(self) -> None:
        """Frame-accounting guard run before every spill.

        A spill transiently needs one writer frame and then pins one
        reader frame for the new run, so two spare frames must be
        available.  While they are not, merge runs early: each merge of
        ``r`` runs closes ``r`` reader frames and opens one, netting
        ``r - 1`` frames (the transient merge writer fits in the one
        spare frame the queue's invariant preserves).  Prefer the lowest
        level holding at least two runs (cheapest records to move); when
        every level is a singleton, collapse all runs into one.  If no
        two runs remain to merge, fall through and let the budget raise
        — memory is genuinely exhausted, not fragmented into readers.
        """
        B = self.machine.B
        while self.machine.budget.available < 2 * B:
            if not self._merge_for_frames():
                break

    def _merge_for_frames(self) -> bool:
        """One frame-reclaiming early merge; False when impossible."""
        for index, level in enumerate(self._levels):
            if len(level) >= 2:
                self._merge_level(index)
                return True
        open_runs = [run for level in self._levels for run in level]
        if len(open_runs) < 2:
            return False
        # Only singleton levels: a per-level merge would just move one
        # run up.  Merging sorted runs from *different* levels is still
        # a merge of sorted sequences, so collapse them all into a
        # single top run and reclaim every frame but one.
        merged = self._merge_runs(open_runs, name="pq/collapsed")
        top = len(self._levels)
        for level in self._levels:
            level.clear()
        self._add_run(top, _Run(merged))
        return True

    def _add_run(self, level_index: int, run: _Run) -> None:
        while len(self._levels) <= level_index:
            self._levels.append([])
        if run.head is None:
            return
        level = self._levels[level_index]
        level.append(run)
        if len(level) > self.group_arity:
            self._merge_level(level_index)

    def _merge_runs(self, runs: List[_Run], name: str) -> FileStream:
        """k-way merge ``runs`` into one finalized stream, closing every
        input run (frames released, blocks freed).  Costs one read and
        one write per block of live records."""
        merged = FileStream(self.machine, name=name)
        try:
            for record in LoserTree([run.records() for run in runs]):
                merged.append(record)
            merged.finalize()
        except BaseException:
            # Faulted merge: reclaim the half-written output.  The
            # inputs are closed below; the queue is left closeable (all
            # frames returned) but not resumable.
            merged.delete()
            raise
        finally:
            for run in runs:
                run.close()
        return merged

    def _merge_level(self, level_index: int) -> None:
        """k-way merge every run of a level into one run one level up."""
        level = self._levels[level_index]
        self._levels[level_index] = []
        merged = self._merge_runs(level, name="pq/merged")
        self._add_run(level_index + 1, _Run(merged))

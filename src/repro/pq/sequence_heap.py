"""External priority queue (sequence heap).

The survey's external priority queues achieve ``O((1/B) log_{M/B}(N/B))``
amortized I/Os per operation — the per-record sorting cost — by batching:
inserts accumulate in an in-memory heap; when it fills, its contents are
written as one sorted run; runs are organized into levels of at most ``k``
runs each, and a level that fills is k-way merged into a single run one
level up.  ``delete_min`` takes the minimum over the in-memory heap and
the head record of every on-disk run.

This is the structure behind time-forward processing and external Dijkstra
in the survey; a B-tree used as a priority queue pays ``Θ(log_B N)`` I/Os
per operation instead, which the priority-queue experiment quantifies.
"""

from __future__ import annotations

import heapq
from itertools import chain
from typing import Any, Iterator, List, Optional, Tuple

from ..core.exceptions import ConfigurationError, EMError
from ..core.machine import Machine
from ..core.stream import FileStream
from ..sort.merge import LoserTree


class _Run:
    """A sorted on-disk run with a one-record lookahead head."""

    __slots__ = ("stream", "reader", "head")

    def __init__(self, stream: FileStream):
        self.stream = stream
        self.reader = iter(stream)
        self.head: Optional[tuple] = next(self.reader, None)

    def advance(self) -> None:
        self.head = next(self.reader, None)
        if self.head is None:
            self.stream.delete()

    def records(self) -> Iterator[tuple]:
        """All remaining records including the head."""
        if self.head is None:
            return iter(())
        return chain([self.head], self.reader)


class ExternalPriorityQueue:
    """A min-priority queue of ``(priority, item)`` pairs on disk.

    Args:
        machine: the external-memory machine.
        group_arity: maximum runs per level before the level is merged
            upward; defaults to ``max(2, m//2 - 1)``.
        insertion_capacity: records held in the in-memory insertion heap;
            defaults to ``M // 4`` (reserved from the machine budget for
            the queue's lifetime — call :meth:`close` to release it).

    Ties between equal priorities are broken by insertion order (FIFO).
    """

    def __init__(
        self,
        machine: Machine,
        group_arity: Optional[int] = None,
        insertion_capacity: Optional[int] = None,
    ):
        self.machine = machine
        self.group_arity = (
            group_arity if group_arity is not None else max(2, machine.m // 4)
        )
        if self.group_arity < 2:
            raise ConfigurationError(
                f"group arity must be >= 2, got {self.group_arity}"
            )
        self.insertion_capacity = (
            insertion_capacity
            if insertion_capacity is not None
            else max(2, machine.M // 4)
        )
        machine.budget.acquire(self.insertion_capacity)
        self._heap: List[tuple] = []
        self._levels: List[List[_Run]] = []
        self._sequence = 0
        self._size = 0
        self._closed = False

    # ------------------------------------------------------------------
    def insert(self, priority: Any, item: Any = None) -> None:
        """Insert ``item`` with ``priority``; amortized ``O((1/B)·log)``
        I/Os."""
        self._check_open()
        heapq.heappush(self._heap, (priority, self._sequence, item))
        self._sequence += 1
        self._size += 1
        if len(self._heap) >= self.insertion_capacity:
            self._spill_heap()

    def delete_min(self) -> Tuple[Any, Any]:
        """Remove and return the ``(priority, item)`` pair with the
        smallest priority (FIFO among equal priorities).

        Raises:
            EMError: when the queue is empty.
        """
        self._check_open()
        if self._size == 0:
            raise EMError("delete_min on an empty priority queue")
        best_run: Optional[_Run] = None
        best: Optional[tuple] = self._heap[0] if self._heap else None
        for level in self._levels:
            for run in level:
                if run.head is not None and (
                    best is None or run.head < best
                ):
                    best = run.head
                    best_run = run
        assert best is not None
        if best_run is None:
            heapq.heappop(self._heap)
        else:
            best_run.advance()
            if best_run.head is None:
                # Prune the exhausted run so head scans stay short and its
                # reader frame is released.
                for level in self._levels:
                    if best_run in level:
                        level.remove(best_run)
                        break
        self._size -= 1
        priority, _, item = best
        return priority, item

    def peek_min(self) -> Tuple[Any, Any]:
        """Return (without removing) the minimum ``(priority, item)``."""
        self._check_open()
        if self._size == 0:
            raise EMError("peek_min on an empty priority queue")
        best = self._heap[0] if self._heap else None
        for level in self._levels:
            for run in level:
                if run.head is not None and (best is None or run.head < best):
                    best = run.head
        priority, _, item = best
        return priority, item

    def __len__(self) -> int:
        return self._size

    @property
    def num_levels(self) -> int:
        """Number of on-disk run levels."""
        return len(self._levels)

    def close(self) -> None:
        """Release the insertion heap's memory reservation and delete all
        on-disk runs.  The queue becomes unusable."""
        if self._closed:
            return
        self.machine.budget.release(self.insertion_capacity)
        for level in self._levels:
            for run in level:
                if run.head is not None:
                    run.stream.delete()
        self._levels = []
        self._heap = []
        self._closed = True

    def __enter__(self) -> "ExternalPriorityQueue":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    def _check_open(self) -> None:
        if self._closed:
            raise EMError("priority queue has been closed")

    def _spill_heap(self) -> None:
        """Write the insertion heap as a sorted run into level 0."""
        # em: ok(EM004) insertion heap ≤ insertion_capacity, reserved
        # for the queue's lifetime at construction
        records = sorted(self._heap)
        self._heap = []
        stream = FileStream(self.machine, name="pq/run")
        for record in records:
            stream.append(record)
        stream.finalize()
        self._add_run(0, _Run(stream))

    def _add_run(self, level_index: int, run: _Run) -> None:
        while len(self._levels) <= level_index:
            self._levels.append([])
        if run.head is None:
            return
        level = self._levels[level_index]
        level.append(run)
        if len(level) > self.group_arity:
            self._merge_level(level_index)

    def _merge_level(self, level_index: int) -> None:
        """k-way merge every run of a full level into one run one level
        up.  Costs one read and one write per block of live records."""
        level = self._levels[level_index]
        sources = [run.records() for run in level]
        merged = FileStream(self.machine, name="pq/merged")
        for record in LoserTree(sources):
            merged.append(record)
        merged.finalize()
        for run in level:
            run.stream.delete()
        self._levels[level_index] = []
        self._add_run(level_index + 1, _Run(merged))

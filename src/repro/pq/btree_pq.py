"""Baseline priority queue backed by a B+-tree.

The natural RAM-model translation: keep the pending items in a search
tree, take the leftmost leaf entry for ``delete_min``.  Every operation
pays a root-to-leaf walk — ``Θ(log_B N)`` I/Os — which the
priority-queue experiment contrasts against the sequence heap's
``O((1/B) log_{M/B}(N/B))`` amortized cost.
"""

from __future__ import annotations

from typing import Any, Optional, Tuple

from ..core.exceptions import EMError
from ..core.machine import Machine
from ..search.btree import BPlusTree


class BTreePriorityQueue:
    """A min-priority queue that stores ``(priority, seq)`` keys in a
    B+-tree.  FIFO among equal priorities."""

    def __init__(self, machine: Machine, order: Optional[int] = None):
        self.machine = machine
        self._tree = BPlusTree(machine, order=order)
        self._sequence = 0

    def insert(self, priority: Any, item: Any = None) -> None:
        """Insert ``item`` with ``priority`` (``Θ(log_B N)`` I/Os cold)."""
        self._tree.insert((priority, self._sequence), item)
        self._sequence += 1

    def delete_min(self) -> Tuple[Any, Any]:
        """Remove and return the minimum ``(priority, item)``.

        Raises:
            EMError: when the queue is empty.
        """
        entry = self._tree.min_item()
        if entry is None:
            raise EMError("delete_min on an empty priority queue")
        (priority, _), item = entry
        self._tree.delete(entry[0])
        return priority, item

    def peek_min(self) -> Tuple[Any, Any]:
        """Return (without removing) the minimum ``(priority, item)``."""
        entry = self._tree.min_item()
        if entry is None:
            raise EMError("peek_min on an empty priority queue")
        (priority, _), item = entry
        return priority, item

    def __len__(self) -> int:
        return len(self._tree)

"""Prefetching: sequential read-ahead and forecasting for merges.

Two read schedules from the survey:

* :func:`read_ahead` — for a sequential scan the future is fully known,
  so each demanded block is fetched together with its successors, one per
  idle disk, as a single parallel step.
* :class:`ForecastingPrefetcher` — during a ``k``-way merge the next
  block needed is not the next block of *any* fixed run; Knuth's
  *forecasting* rule says it is the next block of the run whose most
  recently fetched block has the smallest last key.  Each demanded fetch
  is therefore batched with the next blocks of the most urgent other
  runs, one per idle disk, so a ``D``-disk merge approaches one block per
  disk per step instead of one block per step.

Both schedules stage prefetched payloads in pinned frames charged to the
machine's memory budget (:meth:`~repro.runtime.scheduler.IOScheduler.
try_pin`); staging never exceeds the spare frames, and on a single disk
no prefetch happens at all, keeping transfer and step counts identical to
the demand-paged path.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Iterator, List, Sequence

from ..core.disk import Block


def read_ahead(runtime, block_ids: Sequence[int]) -> Iterator[Block]:
    """Yield the payload of every block in ``block_ids``, in order,
    batching each demanded read with successor blocks on idle disks.

    The caller owns the frame holding the yielded payload (one block of
    budget, acquired by the consuming reader); staged successors are
    pinned by the scheduler and unpinned as they are yielded.
    """
    scheduler = runtime.scheduler
    machine = runtime.machine
    disk_of = machine.disk.disk_of
    n = len(block_ids)
    staged: Deque[Block] = deque()
    index = 0
    try:
        while staged or index < n:
            if staged:
                scheduler.unpin()
                yield staged.popleft()
                continue
            batch = [block_ids[index]]
            index += 1
            if machine.num_disks > 1:
                used = {disk_of(batch[0])}
                while index < n and len(used) < machine.num_disks:
                    disk = disk_of(block_ids[index])
                    # Slack: a scan cannot see the lazily acquired writer
                    # buffers of whatever algorithm consumes it, so its
                    # (unreclaimable) pins leave D frames for them.
                    if disk in used or \
                            not scheduler.try_pin(machine.num_disks):
                        break
                    used.add(disk)
                    batch.append(block_ids[index])
                    index += 1
            for block_id in batch:
                runtime.writer.ensure_flushed(block_id)
            payloads = scheduler.read_batch(batch)
            staged.extend(payloads[1:])
            yield payloads[0]
    finally:
        if staged:
            scheduler.unpin(len(staged))
            staged.clear()


class _RunState:
    """Per-run cursor of the forecasting prefetcher."""

    __slots__ = ("block_ids", "next_fetch", "staged", "tail_key")

    def __init__(self, block_ids: Sequence[int]):
        self.block_ids = list(block_ids)
        self.next_fetch = 0
        self.staged: Deque[Block] = deque()
        self.tail_key: Any = None  # last key of the newest fetched block

    @property
    def exhausted(self) -> bool:
        return self.next_fetch >= len(self.block_ids)


class ForecastingPrefetcher:
    """Schedules the block reads of a multi-way merge by forecasting.

    Args:
        runtime: the machine's :class:`~repro.runtime.Runtime`.
        run_block_ids: one block-id sequence per sorted run.
        key: the merge's key function (the forecast compares the key of
            each fetched block's *last* record across runs).
        pin_slack: frames that must stay available after each staging
            pin.  Staged read data is not reclaimable, so a merge whose
            output writer shares the spare frames (a one-block-at-a-time
            writer batching through write-behind) passes ``D - 1`` here
            to keep a write window possible.

    Use :meth:`reader` to obtain one record iterator per run, feed them
    to the merge, and call :meth:`close` when the merge ends (normally or
    not) so staged frames are returned to the budget.
    """

    def __init__(
        self,
        runtime,
        run_block_ids: Sequence[Sequence[int]],
        key: Callable[[Any], Any],
        pin_slack: int = 0,
    ):
        self.runtime = runtime
        self.scheduler = runtime.scheduler
        self._key = key
        self._pin_slack = pin_slack
        self._runs = [_RunState(ids) for ids in run_block_ids]
        # One frame per run's *current* block, reserved for the whole
        # merge up front (every reader stays live until the merge ends).
        # Reserving lazily instead would let opportunistic pins starve a
        # reader that has not started yet.
        machine = runtime.machine
        self._reader_reserve = machine.block_size * len(self._runs)
        machine.budget.acquire(self._reader_reserve)

    # ------------------------------------------------------------------
    def reader(self, index: int) -> Iterator[Any]:
        """Record iterator over run ``index``, fed by forecasted fetches.

        The run's current block lives in a frame reserved by the
        prefetcher; staged blocks are pinned separately by the scheduler.
        """
        for payload in self.block_reader(index):
            for record in payload:
                yield record

    def block_reader(self, index: int) -> Iterator[Block]:
        """Whole-payload iterator over run ``index`` — the batch merge's
        counterpart of :meth:`reader`, identical fetch schedule and
        counters, no per-record interpreter loop."""
        while True:
            payload = self._next_block(index)
            if payload is None:
                self._drop(index)
                return
            yield payload

    def close(self) -> None:
        """Drop every staged block, unpin its frame, and release the
        reader frames (idempotent)."""
        for index in range(len(self._runs)):
            self._drop(index)
        if self._reader_reserve:
            self.runtime.machine.budget.release(self._reader_reserve)
            self._reader_reserve = 0

    # ------------------------------------------------------------------
    def _next_block(self, index: int) -> Block:
        run = self._runs[index]
        if run.staged:
            self.scheduler.unpin()
            return run.staged.popleft()
        if run.exhausted:
            return None
        return self._fetch(index)

    def _fetch(self, lead: int) -> Block:
        """Fetch the lead run's next block, batched with the next block
        of each most-urgent other run on an idle disk."""
        machine = self.runtime.machine
        disk_of = machine.disk.disk_of
        runs = self._runs
        run = runs[lead]
        batch = [(lead, run.block_ids[run.next_fetch])]
        run.next_fetch += 1
        if machine.num_disks > 1:
            used = {disk_of(batch[0][1])}
            for j in self._forecast_order(lead):
                if len(used) >= machine.num_disks:
                    break
                other = runs[j]
                block_id = other.block_ids[other.next_fetch]
                disk = disk_of(block_id)
                if disk in used:
                    continue
                if not self.scheduler.try_pin(self._pin_slack):
                    break
                used.add(disk)
                batch.append((j, block_id))
                other.next_fetch += 1
        for _, block_id in batch:
            self.runtime.writer.ensure_flushed(block_id)
        payloads = self.scheduler.read_batch([b for _, b in batch])
        result = None
        for (j, _), payload in zip(batch, payloads):
            runs[j].tail_key = self._key(payload[-1])
            if j == lead:
                result = payload
            else:
                runs[j].staged.append(payload)
        return result

    def _forecast_order(self, lead: int) -> List[int]:
        """Runs still needing blocks, most urgent first: never-fetched
        runs (the merge needs their first block immediately), then
        ascending key of the newest fetched block's last record."""
        candidates = [
            j for j, run in enumerate(self._runs)
            if j != lead and not run.staged and not run.exhausted
        ]
        candidates.sort(
            key=lambda j: (0, 0, j) if self._runs[j].next_fetch == 0
            else (1, self._runs[j].tail_key, j)
        )
        return candidates

    def _drop(self, index: int) -> None:
        run = self._runs[index]
        if run.staged:
            self.scheduler.unpin(len(run.staged))
            run.staged.clear()
        run.next_fetch = len(run.block_ids)

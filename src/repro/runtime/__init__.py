"""repro.runtime — scheduled I/O between algorithms and the disk array.

The Parallel Disk Model's bounds (``Θ(N/(DB))`` scan, sort in
``Θ((N/(DB))·log_{M/B}(N/B))`` steps) assume every step moves one block
*per disk*.  This package supplies the scheduling that makes algorithms
actually do that:

* :class:`~repro.runtime.scheduler.IOScheduler` — per-disk request
  queues drained as single parallel steps, plus pinned-frame accounting
  so staged blocks never exceed the ``m``-frame budget.
* :mod:`~repro.runtime.prefetch` — sequential read-ahead for scans and
  the survey's *forecasting* prefetcher for multi-way merges.
* :class:`~repro.runtime.writebehind.WriteBehind` — defers completed
  blocks and flushes up to ``D`` of them per step.
* :class:`~repro.runtime.trace.Tracer` — per-phase, per-disk, per-step
  attribution of every transfer, with Chrome trace-event export.

Algorithms reach all of this through ``machine.runtime`` (built lazily)
and ``with machine.trace("phase"): ...``; on a single disk every
component degrades to the unbuffered path with bit-identical I/O counts.
"""

from __future__ import annotations

from typing import List, Sequence

from ..core.disk import Block
from .prefetch import ForecastingPrefetcher, read_ahead
from .scheduler import IOScheduler
from .trace import Tracer
from .writebehind import WriteBehind

__all__ = [
    "ForecastingPrefetcher",
    "IOScheduler",
    "Runtime",
    "Tracer",
    "WriteBehind",
    "read_ahead",
]


class Runtime:
    """The machine's I/O runtime: scheduler, write-behind, and tracer.

    Constructed lazily by :attr:`repro.core.machine.Machine.runtime`;
    algorithms should not instantiate it directly.
    """

    def __init__(self, machine):
        self.machine = machine
        self.scheduler = IOScheduler(machine)
        self.writer = WriteBehind(machine, self.scheduler)
        self.tracer = Tracer(machine)
        # Under memory pressure the budget asks the runtime to give
        # memory back: first flush the write-behind window (its pinned
        # frames drop without wasting a transfer already paid), then
        # shrink the buffer pool, clean frames first.
        machine.budget.reclaimer = self._reclaim

    # ------------------------------------------------------------------
    def _reclaim(self, deficit: int) -> None:
        """Free at least ``deficit`` records of reclaimable memory if
        possible.  Installed as the budget's ``reclaimer``; an
        algorithm's over-capacity ``acquire`` lands here before failing."""
        budget = self.machine.budget
        before = budget.in_use
        self.writer.flush()
        freed = before - budget.in_use
        if freed < deficit:
            self.machine.pool.reclaim(deficit - freed)

    # ------------------------------------------------------------------
    def read_block(self, block_id: int) -> Block:
        """Read one block, observing any deferred write to it first.
        Transient faults are retried under the scheduler's policy."""
        self.writer.ensure_flushed(block_id)
        disk = self.machine.disk
        return self.scheduler.retry.run(
            disk, lambda: disk.read(block_id)
        )

    def read_batch(self, block_ids: Sequence[int]) -> List[Block]:
        """Read a batch through the scheduler (one step per wave),
        observing deferred writes first."""
        for block_id in block_ids:
            self.writer.ensure_flushed(block_id)
        return self.scheduler.read_batch(block_ids)

    def flush(self) -> None:
        """Write out every deferred block."""
        self.writer.flush()

    def start_trace(self) -> Tracer:
        """Begin a fresh trace; returns the tracer for reporting."""
        return self.tracer.start()

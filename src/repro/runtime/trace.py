"""Structured I/O tracing: who spent which parallel step, and where.

The tracer listens to the machine's :class:`~repro.core.disk.DiskArray`
(every transfer method reports the op, the blocks, their disks, and the
step cost), so its per-phase tallies agree with the machine's
:class:`~repro.core.stats.IOStats` *by construction*.  Algorithms label
regions with :meth:`~repro.core.machine.Machine.trace`::

    tracer = machine.runtime.start_trace()
    with machine.trace("merge-pass-1"):
        ...
    print(tracer.summary_table())
    open("trace.json", "w").write(tracer.to_json())

Phases nest; I/O is attributed to the full phase path (e.g.
``sort/merge-pass-1``).  The exported JSON follows the Chrome trace-event
format — load it in ``chrome://tracing`` or Perfetto: each disk is a
lane (``tid``), each event a complete span whose timestamp is the
parallel-step clock, so idle lanes are visible gaps.
"""

from __future__ import annotations

import json
from contextlib import contextmanager
from typing import Dict, Iterator, List, Sequence, Tuple

from ..core.exceptions import ConfigurationError
from ..core.stats import IOStats, format_table

UNTRACED = "(untraced)"


class Tracer:
    """Per-phase I/O attribution and Chrome trace-event export.

    The tracer is inert until :meth:`start` installs it as the disk's
    listener; :meth:`stop` detaches it, keeping the collected events.
    """

    def __init__(self, machine):
        self.machine = machine
        self.active = False
        self._stack: List[str] = []
        self._events: List[dict] = []
        self._spans: List[Tuple[str, int, int]] = []
        self._phase_stats: Dict[str, IOStats] = {}
        self._pool_stats: Dict[str, Dict[str, int]] = {}
        self._clock = 0  # parallel steps since start()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "Tracer":
        """Begin a fresh trace and attach to the machine's disk."""
        self._events.clear()
        self._spans.clear()
        self._phase_stats.clear()
        self._pool_stats.clear()
        self._clock = 0
        self.machine.disk.listener = self
        self.active = True
        return self

    def stop(self) -> None:
        """Detach from the disk, keeping the collected trace."""
        if self.machine.disk.listener is self:
            self.machine.disk.listener = None
        self.active = False

    @property
    def current_phase(self) -> str:
        """The innermost phase path, ``/``-joined."""
        return "/".join(self._stack) if self._stack else UNTRACED

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Label all I/O inside the ``with`` block as phase ``name``."""
        self._stack.append(name)
        label = self.current_phase
        start = self._clock
        try:
            yield
        finally:
            self._stack.pop()
            if self.active:
                self._spans.append((label, start, self._clock))

    # ------------------------------------------------------------------
    # DiskArray listener protocol
    # ------------------------------------------------------------------
    def on_io(
        self,
        op: str,
        block_ids: Sequence[int],
        disks: Sequence[int],
        steps: int,
    ) -> None:
        """Record one transfer batch (called by the disk array)."""
        label = self.current_phase
        delta = IOStats(
            reads=len(block_ids) if op == "read" else 0,
            writes=len(block_ids) if op == "write" else 0,
            read_steps=steps if op == "read" else 0,
            write_steps=steps if op == "write" else 0,
        )
        base = self._phase_stats.get(label, IOStats())
        self._phase_stats[label] = base + delta
        per_disk: Dict[int, List[int]] = {}
        for block_id, disk in zip(block_ids, disks):
            per_disk.setdefault(disk, []).append(block_id)
        for disk, blocks in per_disk.items():
            self._events.append({
                "name": op,
                "cat": "io",
                "ph": "X",
                "ts": self._clock,
                "dur": max(1, len(blocks)),
                "pid": 0,
                "tid": disk,
                "args": {
                    "phase": label,
                    "blocks": blocks,
                    "step": self._clock,
                },
            })
        self._clock += steps

    def on_fault(self, kind: str, block_id: int, disk: int) -> None:
        """Record one injected fault (called by the disk array)."""
        label = self.current_phase
        base = self._phase_stats.get(label, IOStats())
        self._phase_stats[label] = base + IOStats(faults=1)
        self._events.append({
            "name": f"fault:{kind}",
            "cat": "fault",
            "ph": "i",
            "s": "t",
            "ts": self._clock,
            "pid": 0,
            "tid": max(0, disk),
            "args": {"phase": label, "block": block_id},
        })

    def on_retry(self, op: str, block_id: int, attempt: int) -> None:
        """Record one re-issued transfer attempt (called by the retry
        policy through the device)."""
        label = self.current_phase
        base = self._phase_stats.get(label, IOStats())
        self._phase_stats[label] = base + IOStats(retries=1)
        self._events.append({
            "name": f"retry:{op}",
            "cat": "fault",
            "ph": "i",
            "s": "t",
            "ts": self._clock,
            "pid": 0,
            "tid": 0,
            "args": {"phase": label, "block": block_id,
                     "attempt": attempt},
        })

    _POOL_EVENTS = ("hit", "miss", "eviction", "scrub", "bypass")

    def on_pool(self, event: str, block_id: int) -> None:
        """Record one buffer-pool event (called by the pool; duck-typed
        extension of the listener protocol).  Hits are tallied only —
        they cost no step — while misses, evictions, scrubs, and
        bypasses also emit Chrome-trace instants on the block's disk
        lane so cache behaviour lines up with the transfers it causes."""
        label = self.current_phase
        tally = self._pool_stats.setdefault(
            label, {name: 0 for name in self._POOL_EVENTS}
        )
        tally[event] = tally.get(event, 0) + 1
        if event == "hit":
            return
        try:
            disk = self.machine.disk.disk_of(block_id)
        except Exception:
            disk = 0
        self._events.append({
            "name": f"pool:{event}",
            "cat": "pool",
            "ph": "i",
            "s": "t",
            "ts": self._clock,
            "pid": 0,
            "tid": disk,
            "args": {"phase": label, "block": block_id},
        })

    def on_stall(
        self, steps: int, disks: Sequence[int], reason: str
    ) -> None:
        """Record ``steps`` of stall (backoff / stuck-slow latency) on
        ``disks``; advances the step clock so the degradation shows as
        occupied lanes in the exported trace."""
        label = self.current_phase
        base = self._phase_stats.get(label, IOStats())
        self._phase_stats[label] = base + IOStats(stall_steps=steps)
        for disk in (disks or [0]):
            self._events.append({
                "name": f"stall:{reason}",
                "cat": "stall",
                "ph": "X",
                "ts": self._clock,
                "dur": max(1, steps),
                "pid": 0,
                "tid": disk,
                "args": {"phase": label, "steps": steps},
            })
        self._clock += steps

    # ------------------------------------------------------------------
    # reports
    # ------------------------------------------------------------------
    @property
    def steps(self) -> int:
        """Parallel steps observed since :meth:`start`."""
        return self._clock

    def phase_summary(self) -> Dict[str, IOStats]:
        """Per-phase I/O totals; the values sum to the machine's stats
        delta over the traced region."""
        return dict(self._phase_stats)

    def pool_summary(self) -> Dict[str, Dict[str, int]]:
        """Per-phase buffer-pool tallies (hits / misses / evictions /
        scrubs / bypasses); empty when no pool traffic was traced."""
        return {label: dict(tally)
                for label, tally in self._pool_stats.items()}

    @staticmethod
    def _namespace(label: str, depth: int) -> str:
        """``label`` truncated to its first ``depth`` path components
        (the untraced bucket passes through whole)."""
        if label == UNTRACED:
            return label
        return "/".join(label.split("/")[:depth])

    def namespace_summary(self, depth: int = 1) -> Dict[str, IOStats]:
        """Per-phase totals aggregated by the first ``depth`` components
        of each phase path.  With service traces (``svc/tenant/job``
        phases), ``depth=2`` rolls everything up per tenant; each
        transfer is tallied under exactly one leaf phase, so the
        roll-up never double-counts and still sums to the machine's
        stats delta."""
        if depth < 1:
            raise ConfigurationError(
                f"namespace depth must be >= 1, got {depth}"
            )
        grouped: Dict[str, IOStats] = {}
        for label, stats in self._phase_stats.items():
            group = self._namespace(label, depth)
            grouped[group] = grouped.get(group, IOStats()) + stats
        return grouped

    def namespace_pool_summary(
        self, depth: int = 1
    ) -> Dict[str, Dict[str, int]]:
        """Buffer-pool tallies aggregated like :meth:`namespace_summary`."""
        if depth < 1:
            raise ConfigurationError(
                f"namespace depth must be >= 1, got {depth}"
            )
        grouped: Dict[str, Dict[str, int]] = {}
        for label, tally in self._pool_stats.items():
            group = self._namespace(label, depth)
            into = grouped.setdefault(
                group, {name: 0 for name in self._POOL_EVENTS}
            )
            for name, count in tally.items():
                into[name] = into.get(name, 0) + count
        return grouped

    def namespace_table(self, depth: int = 1) -> str:
        """:meth:`summary_table`, but with phases rolled up to their
        first ``depth`` path components — the per-tenant view of a
        service trace."""
        return self._render_table(
            self.namespace_summary(depth),
            self.namespace_pool_summary(depth),
        )

    def summary_table(self) -> str:
        """The per-phase totals as an aligned plain-text table.  Fault,
        retry, and stall columns appear only when a fault plan actually
        fired; pool columns (hits/misses/evicts, plus scrubs and
        bypasses when any occurred) only when the buffer pool was used —
        so the untouched cases look as before."""
        return self._render_table(self._phase_stats, self._pool_stats)

    def _render_table(
        self,
        phase_stats: Dict[str, IOStats],
        pool_stats: Dict[str, Dict[str, int]],
    ) -> str:
        stats_list = list(phase_stats.values())
        degraded = any(
            s.faults or s.retries or s.stall_steps for s in stats_list
        )
        pooled = bool(pool_stats)
        scrubbed = any(
            t.get("scrub") or t.get("bypass")
            for t in pool_stats.values()
        )
        headers = ["phase", "reads", "writes", "transfers", "steps"]
        if degraded:
            headers += ["faults", "retries", "stalls"]
        if pooled:
            headers += ["hits", "misses", "evicts"]
        if scrubbed:
            headers += ["scrubs", "bypasses"]

        empty_tally = {name: 0 for name in self._POOL_EVENTS}

        def cells(label, stats, tally):
            row = [label, stats.reads, stats.writes, stats.total,
                   stats.total_steps]
            if degraded:
                row += [stats.faults, stats.retries, stats.stall_steps]
            if pooled:
                row += [tally.get("hit", 0), tally.get("miss", 0),
                        tally.get("eviction", 0)]
            if scrubbed:
                row += [tally.get("scrub", 0), tally.get("bypass", 0)]
            return row

        # A phase may have pool hits but no transfers (or vice versa):
        # iterate the union of both tallies' phase labels.
        labels = sorted(set(phase_stats) | set(pool_stats))
        rows = [
            cells(label,
                  phase_stats.get(label, IOStats()),
                  pool_stats.get(label, empty_tally))
            for label in labels
        ]
        total = IOStats()
        for stats in stats_list:
            total = total + stats
        pool_total = dict(empty_tally)
        for tally in pool_stats.values():
            for name, count in tally.items():
                pool_total[name] = pool_total.get(name, 0) + count
        rows.append(cells("total", total, pool_total))
        return format_table(headers, rows)

    def to_chrome(self, namespace_lanes: int = 0) -> dict:
        """The trace in Chrome trace-event format (a JSON-able dict).

        Disk lanes are threads ``0..D-1``; phase spans render on lane
        ``D`` above them.  Timestamps are parallel steps.

        Args:
            namespace_lanes: when ``> 0``, add one extra lane per
                distinct phase-path prefix of that depth (e.g. ``2``
                with ``svc/tenant/job`` phases gives every tenant its
                own lane of job spans).  ``0`` — the default — leaves
                the export exactly as before.
        """
        events: List[dict] = [
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 0,
                "tid": disk,
                "args": {"name": f"disk {disk}"},
            }
            for disk in range(self.machine.num_disks)
        ]
        phase_lane = self.machine.num_disks
        events.append({
            "name": "thread_name",
            "ph": "M",
            "pid": 0,
            "tid": phase_lane,
            "args": {"name": "phases"},
        })
        for label, start, end in self._spans:
            events.append({
                "name": label,
                "cat": "phase",
                "ph": "X",
                "ts": start,
                "dur": max(1, end - start),
                "pid": 0,
                "tid": phase_lane,
                "args": {"steps": end - start},
            })
        if namespace_lanes > 0:
            groups = sorted({
                self._namespace(label, namespace_lanes)
                for label, _, _ in self._spans
            })
            for offset, group in enumerate(groups):
                lane = phase_lane + 1 + offset
                events.append({
                    "name": "thread_name",
                    "ph": "M",
                    "pid": 0,
                    "tid": lane,
                    "args": {"name": group},
                })
                for label, start, end in self._spans:
                    if self._namespace(label, namespace_lanes) != group:
                        continue
                    events.append({
                        "name": label,
                        "cat": "phase",
                        "ph": "X",
                        "ts": start,
                        "dur": max(1, end - start),
                        "pid": 0,
                        "tid": lane,
                        "args": {"steps": end - start},
                    })
        events.extend(self._events)
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def to_json(self) -> str:
        """The Chrome trace serialized as a JSON string."""
        return json.dumps(self.to_chrome())

    def save(self, path: str) -> None:
        """Write the Chrome trace JSON to ``path`` (host-side output,
        outside the I/O model)."""
        with open(path, "w") as fh:  # em: ok(EM002) host-side trace export
            fh.write(self.to_json())

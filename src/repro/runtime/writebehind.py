"""Coalescing write-behind buffer.

Sequential writers emit one block at a time, but on a ``D``-disk machine
the step-optimal schedule holds completed blocks back until ``D`` of them
— one per disk — are pending, then writes them as a single parallel step.
:class:`WriteBehind` implements that deferral for every
:class:`~repro.core.stream.FileStream` on the machine at once, so
interleaved writers (e.g. the ``k`` output buckets of a distribution pass)
share the same ``D``-block window.

Deferred blocks occupy pinned frames charged to the machine's memory
budget (see :class:`~repro.runtime.scheduler.IOScheduler.try_pin`); when
no frame is spare, or on a single disk where deferral cannot save a step,
blocks are written through immediately — the transfer and step counts are
then bit-identical to the unbuffered path.  Rewriting a deferred block
coalesces in place, saving the superseded transfer.

The buffer pool's dirty-frame write-backs enter this same window
(:meth:`~repro.core.cache.BufferPool.flush`), so evicted cache blocks
coalesce into the ``D``-block waves alongside stream output — except
while checksums are enabled, when a payload leaving the pool is written
through and verified immediately so a torn write is caught while the
good copy still exists (the pool then calls :meth:`discard` first, so
no stale deferred copy can resurrect it).
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Sequence, Set, Tuple

from ..core.records import copy_payload
from .scheduler import IOScheduler


class WriteBehind:
    """Defers block writes and flushes up to ``D`` of them per step.

    Args:
        machine: the machine whose disk receives the writes.
        scheduler: the scheduler providing frame pins and parallel drains.
    """

    def __init__(self, machine, scheduler: IOScheduler):
        self.machine = machine
        self.scheduler = scheduler
        self._pending: Dict[int, List[Any]] = {}
        self._disks: Set[int] = set()

    def __len__(self) -> int:
        return len(self._pending)

    def put(self, block_id: int, records: Sequence[Any]) -> None:
        """Accept one completed block for (possibly deferred) writing."""
        if block_id in self._pending:
            # The block is still in the window: coalesce, no new transfer.
            self._pending[block_id] = copy_payload(records)
            return
        machine = self.machine
        if machine.num_disks < 2:
            # Write through via the scheduler: identical transfer and
            # step counts (a one-block wave), but the wave gets the
            # scheduler's transient-fault retry.
            self.scheduler.write_batch([(block_id, records)])
            return
        if not self.scheduler.try_pin():
            # No spare frame: flush the current window (returning its
            # pins) and retry, so a tight budget still batches writes in
            # window-sized waves rather than one step per block.
            self.flush()
            if not self.scheduler.try_pin():
                self.scheduler.write_batch([(block_id, records)])
                return
        disk = machine.disk.disk_of(block_id)
        if disk in self._disks:
            # A second block on the same disk cannot share its step;
            # flush the current window first.  The pin taken above stays
            # held for the incoming block.
            self.flush()
        self._pending[block_id] = copy_payload(records)
        self._disks.add(disk)
        if len(self._disks) >= machine.num_disks:
            self.flush()

    def put_batch(
        self, writes: Sequence[Tuple[int, Sequence[Any]]]
    ) -> None:
        """Accept several completed blocks at once.

        On one disk the batch issues through a single scheduler pass —
        the same one-block waves, transfers, and steps as per-block
        puts, minus the per-call queue bookkeeping.  With ``D`` disks
        each block enters the deferral window exactly as :meth:`put`
        would place it, so coalescing and window flushes are unchanged.
        """
        if self.machine.num_disks < 2:
            self.scheduler.write_batch(list(writes))
            return
        for block_id, records in writes:
            self.put(block_id, records)

    def flush(self) -> None:
        """Write every deferred block, batched as parallel steps."""
        if not self._pending:
            return
        pins = len(self._pending)
        self.scheduler.write_batch(list(self._pending.items()))
        self._pending.clear()
        self._disks.clear()
        self.scheduler.unpin(pins)

    def discard(self, block_ids: Iterable[int]) -> None:
        """Drop deferred writes for ``block_ids`` (the stream is being
        deleted; writing them would resurrect freed blocks)."""
        dropped = 0
        for block_id in block_ids:
            if self._pending.pop(block_id, None) is not None:
                dropped += 1
        if dropped:
            disk_of = self.machine.disk.disk_of
            self._disks = {disk_of(b) for b in self._pending}
            self.scheduler.unpin(dropped)

    def ensure_flushed(self, block_id: int) -> None:
        """Flush the window if ``block_id`` is deferred, so a subsequent
        read observes the written data."""
        if block_id in self._pending:
            self.flush()

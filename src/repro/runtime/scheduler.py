"""The parallel-disk I/O scheduler.

The Parallel Disk Model charges one *step* per batch of transfers that
touches each disk at most once.  Algorithms that issue single-block
``read``/``write`` calls therefore pay a full step per block and run at
``D×`` the optimal step count on a ``D``-disk machine.  The
:class:`IOScheduler` closes that gap: callers enqueue block requests, and
:meth:`drain` partitions them into *waves* — at most one request per disk
— issuing each wave as a single parallel I/O.

The scheduler also owns the *pinned-frame* account used by the prefetcher
and write-behind buffer.  A pinned frame holds one staged block (``B``
records) and is charged to the machine's :class:`~repro.core.memory.
MemoryBudget`; the pin count can never exceed the buffer pool's frame
budget ``m``, so prefetch depth is bounded by internal memory exactly as
the model requires.  Pinning is opportunistic: :meth:`try_pin` refuses
(rather than raises) when no frame is spare, and callers fall back to
unbuffered transfers.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, List, Sequence, Tuple

from ..core.disk import Block
from ..core.exceptions import ConfigurationError, MemoryLimitExceeded
from ..faults.retry import RetryPolicy


class IOScheduler:
    """Queues block requests per disk and drains them as parallel steps.

    Args:
        machine: the machine whose :class:`~repro.core.disk.DiskArray`
            the scheduler drives.

    Attributes:
        pinned: number of staged frames currently charged to the budget.
        retry: the :class:`~repro.faults.retry.RetryPolicy` applied to
            every issued wave — a transiently failing wave is re-issued
            whole (its backoff charged as stall steps) until it succeeds
            or the policy gives up with
            :class:`~repro.core.exceptions.RetryExhaustedError`.
    """

    def __init__(self, machine):
        self.machine = machine
        self.pinned = 0
        self.retry = RetryPolicy()
        self._read_queues: Dict[int, Deque[int]] = {}
        self._write_queues: Dict[int, Deque[Tuple[int, List[Any]]]] = {}

    # ------------------------------------------------------------------
    # request queues
    # ------------------------------------------------------------------
    def queue_read(self, block_id: int) -> None:
        """Enqueue a block read on its home disk's queue."""
        disk = self.machine.disk.disk_of(block_id)
        self._read_queues.setdefault(disk, deque()).append(block_id)

    def queue_write(self, block_id: int, records: Sequence[Any]) -> None:
        """Enqueue a block write on its home disk's queue.

        The queue aliases the caller's buffer: enqueue and drain within
        one call (as :meth:`write_batch` does) — the device makes the
        one owning copy when the wave is issued."""
        disk = self.machine.disk.disk_of(block_id)
        self._write_queues.setdefault(disk, deque()).append(
            (block_id, records)
        )

    def drain(self) -> Dict[int, Block]:
        """Issue every queued request, one parallel step per wave.

        Each wave takes the head of every non-empty per-disk queue —
        requests on distinct disks are independent — and issues them with
        a single ``parallel_read``/``parallel_write``, so a wave costs
        exactly one step.  Write waves are issued before read waves of the
        same drain, preserving read-your-writes for requests queued on the
        same block.

        Returns a mapping from block id to payload for every read drained.
        """
        try:
            return self._drain()
        except BaseException:
            # A wave that dies mid-drain (crash, exhausted retries)
            # abandons the whole operation: clear the queues so the
            # caller's unwind — which may free the very blocks still
            # queued — is not followed by a replay of stale requests.
            self._read_queues.clear()
            self._write_queues.clear()
            raise

    def _drain(self) -> Dict[int, Block]:
        results: Dict[int, Block] = {}
        disk = self.machine.disk
        write_queues = self._write_queues
        while write_queues:
            wave = []
            drained = []
            for d, queue in write_queues.items():
                wave.append(queue.popleft())
                if not queue:
                    drained.append(d)
            for d in drained:
                del write_queues[d]
            self.retry.run(
                disk, lambda w=wave: disk.parallel_write(w)
            )
        read_queues = self._read_queues
        while read_queues:
            wave = []
            drained = []
            for d, queue in read_queues.items():
                wave.append(queue.popleft())
                if not queue:
                    drained.append(d)
            for d in drained:
                del read_queues[d]
            payloads = self.retry.run(
                disk, lambda w=wave: disk.parallel_read(w)
            )
            for block_id, payload in zip(wave, payloads):
                results[block_id] = payload
        return results

    # ------------------------------------------------------------------
    # batched convenience wrappers
    # ------------------------------------------------------------------
    def read_batch(self, block_ids: Sequence[int]) -> List[Block]:
        """Read ``block_ids`` through the queues, returning payloads in
        request order.  A batch with at most one block per disk costs one
        step."""
        if len(block_ids) == 1 and not self._read_queues \
                and not self._write_queues:
            # One block, idle queues (the invariant between drains):
            # issue the one-block wave directly — identical transfer
            # and step accounting, none of the queue bookkeeping.
            disk = self.machine.disk
            return self.retry.run(
                disk, lambda: disk.parallel_read(list(block_ids))
            )
        for block_id in block_ids:
            self.queue_read(block_id)
        results = self.drain()
        return [results[block_id] for block_id in block_ids]

    def write_batch(
        self, writes: Sequence[Tuple[int, Sequence[Any]]]
    ) -> None:
        """Write ``(block_id, records)`` pairs through the queues."""
        if len(writes) == 1 and not self._write_queues \
                and not self._read_queues:
            # Same one-wave fast path as read_batch.
            disk = self.machine.disk
            self.retry.run(
                disk, lambda: disk.parallel_write(list(writes))
            )
            return
        for block_id, records in writes:
            self.queue_write(block_id, records)
        self.drain()

    # ------------------------------------------------------------------
    # pinned-frame accounting
    # ------------------------------------------------------------------
    def try_pin(self, slack_frames: int = 0) -> bool:
        """Charge one staged frame (``B`` records) to the memory budget.

        Returns False — without raising — when every one of the ``m``
        frames is already pinned or the budget has no spare frame; callers
        then skip the optimisation instead of overflowing ``M``.

        Args:
            slack_frames: frames that must remain available *after* the
                pin.  Read-ahead pins are not reclaimable (dropping staged
                data would waste the transfer already paid), so callers
                that cannot see every concurrent frame consumer — a scan
                inside an unknown algorithm — leave ``D`` frames of slack
                for lazily acquired writer buffers.  Callers that have
                pre-reserved every consumer (the merge) pin with no slack.
        """
        machine = self.machine
        if self.pinned >= machine.memory_blocks:
            return False
        needed = (1 + slack_frames) * machine.block_size
        if machine.budget.available < needed:
            return False
        try:
            # `available` ignores the buffer pool's reclaimable frames,
            # so this acquire may need the reclaimer to evict cache; if
            # even that cannot make room, skip the optimisation rather
            # than surface MemoryLimitExceeded from a staging pin.
            machine.budget.acquire(machine.block_size)
        except MemoryLimitExceeded:
            return False
        self.pinned += 1
        return True

    def unpin(self, count: int = 1) -> None:
        """Return ``count`` staged frames to the memory budget."""
        if count > self.pinned:
            raise ConfigurationError(
                f"unpinning {count} frames but only {self.pinned} pinned"
            )
        self.machine.budget.release(count * self.machine.block_size)
        self.pinned -= count

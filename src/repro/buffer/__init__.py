"""Buffer tree: batched dictionary operations at sorting cost."""

from .buffer_tree import BufferTree, buffer_tree_sort

__all__ = ["BufferTree", "buffer_tree_sort"]

"""The buffer tree: batched dictionary operations at sorting cost.

Arge's buffer tree attaches an ``M``-record operation buffer to every
internal node of a fan-out-``Θ(m)`` search tree.  Updates and queries are
appended to the root buffer (``O(1/B)`` amortized I/Os); when a buffer
overflows it is emptied in one memoryload and its operations are
distributed to the children, so each operation is read and written once
per level.  With depth ``O(log_m(N/M))`` the amortized cost per operation
is ``O((1/B)·log_{M/B}(N/B))`` — the per-record sorting cost — instead of
the B-tree's ``Θ(log_B N)``.

The price is *laziness*: a query's answer only materializes once the
query operation reaches a leaf, which is forced by :meth:`BufferTree.flush`.
This trade (batched, offline answers at sort cost) is exactly how the
survey uses buffer trees for batched problems and time-forward processing.

Implementation notes:

* Node routing information (pivots, child ids) is kept in memory — it is
  a factor ``Θ(M/B·B) = Θ(M)`` smaller than the data.  Buffers and leaf
  contents live on disk as streams, which is where the I/O goes; stream
  traffic runs through the machine's runtime (retry, write-behind,
  tracing), so the buffer tree needs no buffer-pool frames and leaves
  the shared memory budget to its streams' staging.
* Keys are unique (dictionary semantics); later operations supersede
  earlier ones, ordered by a global sequence number.
* Leaves store up to ``leaf_capacity = M`` records as a sorted stream.
  When a leaf outgrows that, it splits into ``fan_out`` children by
  cutting its (already sorted) contents into equal contiguous chunks —
  the distribution step of the emptying process.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

from ..analysis.sanitizer import io_bound
from ..core.bounds import merge_passes, scan_io, sort_io
from ..core.exceptions import ConfigurationError
from ..core.machine import Machine
from ..core.stream import FileStream

_INSERT = "I"
_DELETE = "D"
_QUERY = "Q"


class _Node:
    """A buffer-tree node.  Leaves hold sorted elements; internal nodes
    hold pivots, children, and nothing else (their buffer does the work).
    """

    __slots__ = ("buffer", "pivots", "children", "elements", "element_count")

    def __init__(self, machine: Machine):
        self.buffer = FileStream(machine, name="buftree/buffer")
        self.pivots: Optional[List[Any]] = None  # None -> leaf
        self.children: Optional[List["_Node"]] = None
        self.elements: Optional[FileStream] = FileStream(
            machine, name="buftree/leaf"
        ).finalize()
        self.element_count = 0

    @property
    def is_leaf(self) -> bool:
        return self.pivots is None


class BufferTree:
    """A buffer tree over unique keys with batched insert/delete/query.

    Args:
        machine: the external-memory machine.
        fan_out: children per internal node; defaults to ``max(2, m // 4)``
            as in Arge's construction.
        leaf_capacity: records per leaf before it splits; defaults to ``M``.

    Query answers are collected in :attr:`query_results` (mapping query
    token to value or ``None``) once :meth:`flush` has run.
    """

    def __init__(
        self,
        machine: Machine,
        fan_out: Optional[int] = None,
        leaf_capacity: Optional[int] = None,
    ):
        self.machine = machine
        self.fan_out = fan_out if fan_out is not None else max(2, machine.m // 4)
        if self.fan_out < 2:
            raise ConfigurationError(
                f"buffer-tree fan-out must be >= 2, got {self.fan_out}"
            )
        # A buffer is emptied in memoryload-sized chunks; alongside one
        # chunk, memory must hold the buffer reader frame plus one output
        # frame per child (during distribution).
        self.buffer_capacity = machine.M - (self.fan_out + 2) * machine.B
        if self.buffer_capacity < machine.B:
            raise ConfigurationError(
                "machine memory too small for a buffer tree: need "
                f"M > (fan_out + 3)·B, have M={machine.M}, B={machine.B}, "
                f"fan_out={self.fan_out}"
            )
        self.leaf_capacity = (
            leaf_capacity if leaf_capacity is not None else machine.M
        )
        if self.leaf_capacity < 2:
            raise ConfigurationError(
                f"leaf capacity must be >= 2, got {self.leaf_capacity}"
            )
        self._root = _Node(machine)
        self._sequence = 0
        self._size = 0  # net inserts applied at leaves
        self.query_results: Dict[Any, Any] = {}

    # ------------------------------------------------------------------
    # operations (lazy)
    # ------------------------------------------------------------------
    def insert(self, key: Any, value: Any = None) -> None:
        """Queue an insert/upsert of ``key -> value``."""
        self._push_op((_INSERT, key, value))

    def delete(self, key: Any) -> None:
        """Queue a delete of ``key`` (a no-op if absent at apply time)."""
        self._push_op((_DELETE, key, None))

    def query(self, key: Any, token: Any = None) -> Any:
        """Queue a point query.  The answer appears in
        :attr:`query_results` under ``token`` (default: the key itself)
        after the next :meth:`flush`.  Returns the token."""
        if token is None:
            token = key
        self._push_op((_QUERY, key, token))
        return token

    def _push_op(self, op: Tuple[str, Any, Any]) -> None:
        kind, key, payload = op
        self._root.buffer.append((self._sequence, kind, key, payload))
        self._sequence += 1
        if len(self._root.buffer) >= self.buffer_capacity:
            self._empty_buffer(self._root)

    # ------------------------------------------------------------------
    # buffer emptying
    # ------------------------------------------------------------------
    def _each_chunk(self, stream: FileStream) -> Iterator[List[tuple]]:
        """Yield the records of ``stream`` in memoryload-sized chunks; the
        memory for the live chunk is reserved while the consumer runs."""
        reader = iter(stream)
        while True:
            with self.machine.budget.reserve(self.buffer_capacity):
                chunk: List[tuple] = []
                for record in reader:
                    chunk.append(record)
                    if len(chunk) == self.buffer_capacity:
                        break
                if not chunk:
                    return
                yield chunk

    def _empty_buffer(self, node: _Node) -> None:
        """Empty ``node``'s buffer, distributing to children (internal) or
        applying to the element stream (leaf).  Buffers larger than one
        memoryload are processed in chunks; chunks arrive in sequence
        order, so lazy-operation semantics are preserved."""
        buffer = node.buffer.finalize()
        node.buffer = FileStream(self.machine, name="buftree/buffer")
        if len(buffer) == 0:
            buffer.delete()
            return

        if node.is_leaf:
            for chunk in self._each_chunk(buffer):
                self._apply_chunk_to_leaf(node, chunk)
            buffer.delete()
            if node.element_count > self.leaf_capacity:
                self._split_leaf(node)
            return

        # Internal node: route operations to the children's buffers.
        for chunk in self._each_chunk(buffer):
            for op in chunk:
                _, _, key, _ = op
                child = node.children[bisect_right(node.pivots, key)]
                child.buffer.append(op)
        buffer.delete()
        # Release every child writer's staging frame before recursing, so
        # nested emptyings never accumulate one frame per tree level.
        for child in node.children:
            child.buffer.sync()
        for child in node.children:
            if len(child.buffer) >= self.buffer_capacity:
                self._empty_buffer(child)

    def _apply_chunk_to_leaf(self, node: _Node, chunk: List[tuple]) -> None:
        """Merge one chunk of operations (already in reserved memory) into
        the leaf's sorted element stream."""
        # em: ok(EM004) one emptying chunk ≤ a memoryload, reserved by
        # the chunking caller
        ops = sorted(
            (key, seq, kind, payload) for seq, kind, key, payload in chunk
        )
        new_elements = FileStream(self.machine, name="buftree/leaf")
        count = 0
        op_index = 0

        def apply_ops_for_key(key: Any, current: Optional[tuple]):
            """Apply all queued ops on ``key`` to the current stored pair
            (or None); return the surviving pair."""
            nonlocal op_index
            state = current
            while op_index < len(ops) and ops[op_index][0] == key:
                _, _, kind, payload = ops[op_index]
                if kind == _INSERT:
                    state = (key, payload)
                elif kind == _DELETE:
                    state = None
                else:  # query: report the state as of this point
                    self.query_results[payload] = (
                        state[1] if state is not None else None
                    )
                op_index += 1
            return state

        for stored_key, stored_value in node.elements:
            # Emit any op-keys entirely before this stored key.
            while op_index < len(ops) and ops[op_index][0] < stored_key:
                pending_key = ops[op_index][0]
                survivor = apply_ops_for_key(pending_key, None)
                if survivor is not None:
                    new_elements.append(survivor)
                    count += 1
            if op_index < len(ops) and ops[op_index][0] == stored_key:
                survivor = apply_ops_for_key(
                    stored_key, (stored_key, stored_value)
                )
                if survivor is not None:
                    new_elements.append(survivor)
                    count += 1
            else:
                new_elements.append((stored_key, stored_value))
                count += 1
        while op_index < len(ops):
            pending_key = ops[op_index][0]
            survivor = apply_ops_for_key(pending_key, None)
            if survivor is not None:
                new_elements.append(survivor)
                count += 1

        old = node.elements
        node.elements = new_elements.finalize()
        self._size += count - node.element_count
        node.element_count = count
        old.delete()

    def _split_leaf(self, node: _Node) -> None:
        """Convert an oversized leaf into an internal node whose children
        are contiguous chunks of its sorted element stream."""
        chunks = self.fan_out
        total = node.element_count
        per_child = -(-total // chunks)  # ceil
        children: List[_Node] = []
        pivots: List[Any] = []
        current: Optional[_Node] = None
        written = 0
        for pair in node.elements:
            if current is None or written == per_child:
                if current is not None:
                    current.elements.finalize()
                current = _Node(self.machine)
                fresh = current.elements
                current.elements = FileStream(
                    self.machine, name="buftree/leaf"
                )
                fresh.delete()
                if children:
                    pivots.append(pair[0])
                children.append(current)
                written = 0
            current.elements.append(pair)
            current.element_count += 1
            written += 1
        if current is not None:
            current.elements.finalize()
        node.elements.delete()
        node.elements = None
        node.element_count = 0
        node.pivots = pivots
        node.children = children

    # ------------------------------------------------------------------
    # forcing
    # ------------------------------------------------------------------
    def flush(self) -> None:
        """Force every buffered operation down to the leaves, resolving
        all pending queries."""
        self._flush_node(self._root)

    def _flush_node(self, node: _Node) -> None:
        if len(node.buffer) > 0 or node.is_leaf:
            self._empty_buffer(node)
        if not node.is_leaf:
            for child in node.children:
                self._flush_node(child)

    # ------------------------------------------------------------------
    # reading (after flush)
    # ------------------------------------------------------------------
    def items(self) -> Iterator[Tuple[Any, Any]]:
        """Yield all ``(key, value)`` pairs in key order.  Flushes first."""
        self.flush()
        yield from self._iter_node(self._root)

    def _iter_node(self, node: _Node) -> Iterator[Tuple[Any, Any]]:
        if node.is_leaf:
            yield from node.elements
        else:
            for child in node.children:
                yield from self._iter_node(child)

    def __len__(self) -> int:
        """Number of live keys **already applied at the leaves**; call
        :meth:`flush` first for an exact count."""
        return self._size

    @property
    def height(self) -> int:
        """Levels in the routing tree (1 = a single leaf)."""
        depth = 1
        node = self._root
        while not node.is_leaf:
            node = node.children[0]
            depth += 1
        return depth

    # ------------------------------------------------------------------
    # invariants (test support)
    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        """Verify routing and sortedness invariants (test use only).
        Flushes pending operations first."""
        self.flush()
        self._check_node(self._root, None, None)
        pairs = list(self._iter_node(self._root))
        keys = [k for k, _ in pairs]
        # em: ok(EM004) test-support invariant check, not an algorithm
        assert keys == sorted(keys), "global key order violated"
        assert len(keys) == len(set(keys)), "duplicate keys stored"
        assert len(keys) == self._size

    def _check_node(self, node: _Node, low, high) -> None:
        assert len(node.buffer) == 0, "unflushed buffer after flush()"
        if node.is_leaf:
            for key, _ in node.elements:
                if low is not None:
                    assert key >= low
                if high is not None:
                    assert key < high
            return
        # em: ok(EM004) ≤ fan-out pivots per node, RAM-resident routing
        assert node.pivots == sorted(node.pivots)
        assert len(node.children) == len(node.pivots) + 1
        bounds = [low] + list(node.pivots) + [high]
        for index, child in enumerate(node.children):
            self._check_node(child, bounds[index], bounds[index + 1])


def _buffer_tree_sort_theory(machine: Machine, n: int) -> float:
    """``O(Sort(N))`` amortized: each record moves down one buffer level
    per emptying, ``O(log_m(N/M))`` levels deep, plus leaf splits."""
    if n <= 0:
        return 0.0
    levels = 1 + merge_passes(n, machine.M, machine.B)
    return levels * (sort_io(n, machine.M, machine.B, machine.D)
                     + 4 * scan_io(n, machine.B, machine.D))


@io_bound(_buffer_tree_sort_theory, factor=8.0)
def buffer_tree_sort(
    machine: Machine,
    stream: FileStream,
    key: Optional[Callable[[Any], Any]] = None,
) -> FileStream:
    """Sort a stream by routing every record through a buffer tree.

    The survey's observation that ``N`` buffer-tree inserts followed by an
    in-order emptying sort at the optimal ``O(Sort(N))`` cost.  Records
    must have unique keys under ``key`` (dictionary semantics); use the
    record itself (default) for distinct records.
    """
    key = key or (lambda record: record)
    tree = BufferTree(machine)
    for record in stream:
        tree.insert(key(record), record)
    output = FileStream(machine, name="buffertree/sorted")
    for _, record in tree.items():
        output.append(record)
    return output.finalize()

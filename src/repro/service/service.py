"""The multi-tenant query service: admit, schedule, meter.

One :class:`QueryService` owns one shared
:class:`~repro.core.machine.Machine` and interleaves many tenants'
cooperative jobs against it:

* **Scheduling** is round-based.  Each round, every tenant's running
  jobs advance one intent; the intents of one tenant's jobs are then
  fulfilled as *batches* — all their pool blocks in one
  :meth:`~repro.core.cache.BufferPool.get_many`, all their stream
  blocks in one :meth:`~repro.runtime.Runtime.read_batch` — so
  concurrent jobs share parallel-disk waves instead of paying one step
  per lone block.  That cross-job batching (and the write-behind
  coalescing of interleaved jobs' writes) is why the interleaved
  service beats serial execution on wall steps.
* **Isolation** is per-tenant.  Batches never mix tenants, every
  round's machine-stats delta is charged to the tenant that ran, and a
  failing block read is re-tried per-job so only the requesting job is
  failed (via ``generator.throw``, which runs the job's cleanup) —
  a tenant hit by a fault plan degrades alone, its retries and stalls
  on its own ledger.
* **Attribution** threads the tracer: all of a tenant's I/O lands
  under ``service/tenant/job`` phases, so
  :meth:`~repro.runtime.trace.Tracer.summary_table` and the Chrome
  export split the shared machine by who asked.

The tenant ordering rotates every round, so no tenant permanently goes
first into a warm (or cold) buffer pool.
"""

from __future__ import annotations

from contextlib import nullcontext as _nullcontext
from typing import Any, Dict, List, Optional

from ..core.exceptions import ConfigurationError
from ..core.intents import PoolRead, StreamRead
from ..core.machine import Machine
from ..core.memory import FairShare, SubBudget
from .admission import AdmissionController
from .jobs import DONE, FAILED, Job
from .metrics import TenantMetrics


class Tenant:
    """One tenant: a named fair share plus its running set and metrics."""

    def __init__(self, name: str, share: SubBudget, weight: int,
                 max_running: int):
        self.name = name
        self.share = share
        self.weight = weight
        self.max_running = max_running
        self.running: List[Job] = []
        self.done: List[Job] = []
        self.metrics = TenantMetrics()
        self._job_names: Dict[str, int] = {}

    def unique_job_name(self, base: str) -> str:
        """Disambiguate ``base`` within this tenant so tracer phases
        (``tenant/job``) never collide between concurrent jobs."""
        count = self._job_names.get(base, 0)
        self._job_names[base] = count + 1
        return base if count == 0 else f"{base}#{count}"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Tenant({self.name!r}, weight={self.weight}, "
            f"running={len(self.running)})"
        )


class QueryService:
    """A multi-tenant query service over one shared machine.

    Usage::

        service = QueryService(machine)
        oltp = service.add_tenant("oltp", weight=2, max_running=8)
        olap = service.add_tenant("olap", weight=1, max_running=2)
        service.submit("oltp", btree_lookup_job(tree, 42))
        service.submit("olap", sort_job(machine, big_stream))
        report = service.run()

    Args:
        machine: the shared machine; its budget is partitioned across
            tenants by a :class:`~repro.core.memory.FairShare`.
        max_queued: bound on the admission queue across all tenants.
        max_running: optional service-wide concurrency cap across
            tenants (``1`` makes the service execute jobs serially —
            the baseline the interleaved schedule is measured against).
        name: the tracer phase wrapping everything the service runs.
    """

    def __init__(self, machine: Machine, max_queued: int = 64,
                 max_running: Optional[int] = None, name: str = "svc"):
        if max_running is not None and max_running < 1:
            raise ConfigurationError(
                f"service-wide max_running must be >= 1, got {max_running}"
            )
        self.machine = machine
        self.name = name
        self.fair = FairShare(machine.budget)
        self.admission = AdmissionController(self.fair, max_queued)
        self.max_running = max_running
        self.tenants: Dict[str, Tenant] = {}
        self.rounds = 0

    # ------------------------------------------------------------------
    # setup & submission
    # ------------------------------------------------------------------
    def add_tenant(self, name: str, weight: int = 1,
                   max_running: int = 2) -> Tenant:
        """Register a tenant with the given fair-share weight and
        per-tenant concurrency cap."""
        if name in self.tenants:
            raise ConfigurationError(f"tenant {name!r} already exists")
        if max_running < 1:
            raise ConfigurationError(
                f"max_running must be >= 1, got {max_running}"
            )
        share = self.fair.add_share(name, weight=weight)
        tenant = Tenant(name, share, weight, max_running)
        self.tenants[name] = tenant
        return tenant

    def tenant(self, name: str) -> Tenant:
        try:
            return self.tenants[name]
        except KeyError:
            raise ConfigurationError(f"no tenant named {name!r}") from None

    def submit(self, tenant_name: str, job: Job) -> Job:
        """Queue ``job`` for ``tenant_name``.

        Raises:
            AdmissionError: infeasible reservation or full queue.
        """
        tenant = self.tenant(tenant_name)
        job.name = tenant.unique_job_name(job.name)
        job.submit_stats = self.machine.stats()
        self.admission.submit(tenant, job)
        return job

    # ------------------------------------------------------------------
    # the scheduling loop
    # ------------------------------------------------------------------
    def run(self) -> dict:
        """Drive every queued and running job to completion; returns the
        service report (per-tenant metrics snapshots and totals).

        Deferred writes are flushed before returning, charged to the
        service phase (coalesced cross-tenant waves cannot be split)."""
        machine = self.machine
        before = machine.stats()
        with machine.trace(self.name):
            while self.admission.pending or self._any_running():
                self._round()
            machine.pool.flush_all()
            machine.runtime.flush()
        return self._report(machine.stats() - before)

    def _any_running(self) -> bool:
        return any(tenant.running for tenant in self.tenants.values())

    def _free_slots(self) -> Optional[int]:
        if self.max_running is None:
            return None
        running = sum(len(t.running) for t in self.tenants.values())
        return max(0, self.max_running - running)

    def _round(self) -> None:
        """One scheduling round: admit, then advance each tenant."""
        self.admission.admit(self._free_slots())
        order = sorted(self.tenants)  # em: ok(EM004) tenant names, few
        if order:
            shift = self.rounds % len(order)
            order = order[shift:] + order[:shift]
        for name in order:
            tenant = self.tenants[name]
            if not tenant.running:
                continue
            before = self.machine.stats()
            with self.machine.trace(tenant.name):
                self._advance_tenant(tenant)
            tenant.metrics.charge(self.machine.stats() - before)
        self.rounds += 1

    def _advance_tenant(self, tenant: Tenant) -> None:
        """Advance every running job of ``tenant`` one intent, then
        fulfill all their intents as per-tenant batches."""
        machine = self.machine
        intents = []  # (job, intent) in job order
        for job in list(tenant.running):
            try:
                with machine.trace(job.name):
                    intent = job.gen.send(job.pending)
            except StopIteration as done:
                self._complete(tenant, job, done.value)
                continue
            except Exception as exc:
                self._fail(tenant, job, exc)
                continue
            finally:
                job.pending = None
            if intent is not None:
                intents.append((job, intent))

        if not intents:
            return
        pool_ids: List[int] = []
        stream_ids: List[int] = []
        for _, intent in intents:
            if isinstance(intent, PoolRead):
                pool_ids.extend(intent.block_ids)
            elif isinstance(intent, StreamRead):
                stream_ids.extend(intent.block_ids)
            else:
                raise TypeError(f"job yielded a non-intent: {intent!r}")
        # A shared wave serving several jobs is charged to the tenant
        # phase (it cannot be split per job); a wave serving exactly one
        # job is unambiguous and traced under that job's phase.
        lone = intents[0][0].name if len(intents) == 1 else None
        try:
            with machine.trace(lone) if lone else _nullcontext():
                pool_payloads = (
                    machine.pool.get_many(pool_ids) if pool_ids else []
                )
                stream_payloads = (
                    machine.runtime.read_batch(stream_ids)
                    if stream_ids else []
                )
        except Exception:
            # The shared batch died and cannot say for which block.
            # Re-serve each job alone: the victim fails alone (its
            # retries/stalls already on this tenant's ledger), the
            # innocent majority proceed.
            self._fulfill_individually(tenant, intents)
            return
        pool_at = 0
        stream_at = 0
        for job, intent in intents:
            if isinstance(intent, PoolRead):
                count = len(intent.block_ids)
                job.pending = pool_payloads[pool_at:pool_at + count]
                pool_at += count
            else:
                count = len(intent.block_ids)
                job.pending = stream_payloads[stream_at:stream_at + count]
                stream_at += count

    def _fulfill_individually(self, tenant: Tenant, intents) -> None:
        """Fallback after a failed shared batch: serve each job's intent
        alone, failing only the job whose blocks actually fail."""
        machine = self.machine
        for job, intent in intents:
            while True:
                try:
                    with machine.trace(job.name):
                        if isinstance(intent, PoolRead):
                            job.pending = machine.pool.get_many(
                                list(intent.block_ids)
                            )
                        else:
                            job.pending = machine.runtime.read_batch(
                                list(intent.block_ids)
                            )
                    break
                except Exception as exc:
                    intent = self._throw(tenant, job, exc)
                    if intent is None:
                        break

    def _throw(self, tenant: Tenant, job: Job, exc: BaseException):
        """Deliver ``exc`` into ``job``'s generator (running its cleanup
        handlers).  Returns a follow-up intent if the generator survived
        and asked for more I/O, else ``None``."""
        try:
            with self.machine.trace(job.name):
                intent = job.gen.throw(exc)
        except StopIteration as done:
            self._complete(tenant, job, done.value)
            return None
        except Exception as err:
            self._fail(tenant, job, err)
            return None
        if intent is None:
            job.pending = None
            return None
        return intent

    # ------------------------------------------------------------------
    # job lifecycle
    # ------------------------------------------------------------------
    def _complete(self, tenant: Tenant, job: Job, result: Any) -> None:
        job.status = DONE
        job.result = result
        self._finish(tenant, job)
        tenant.metrics.completed += 1

    def _fail(self, tenant: Tenant, job: Job, error: BaseException) -> None:
        job.status = FAILED
        job.error = error
        self._finish(tenant, job)
        tenant.metrics.failed += 1

    def _finish(self, tenant: Tenant, job: Job) -> None:
        tenant.running.remove(job)
        tenant.done.append(job)
        now = self.machine.stats()
        job.latency_io = now.total_steps - job.submit_stats.total_steps
        job.latency_wall = now.wall_steps - job.submit_stats.wall_steps
        tenant.metrics.record_latency(job.latency_io, job.latency_wall)
        job.pending = None
        job.gen = None

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def _report(self, total) -> dict:
        return {
            "rounds": self.rounds,
            "total_io_steps": total.total_steps,
            "total_wall_steps": total.wall_steps,
            "total_stall_steps": total.stall_steps,
            "tenants": {
                name: tenant.metrics.snapshot()
                for name, tenant in self.tenants.items()
            },
        }

"""Jobs: schedulable units wrapping the cooperative algorithm variants.

A :class:`Job` owns a *generator factory* rather than a live generator:
the service materializes the generator only when admission lets the job
start, passing the owning tenant's
:class:`~repro.core.memory.SubBudget` so every frame the job reserves
lands on that tenant's ledger.  The factories below wrap each
cooperative entry point the substrate exposes — B+-tree point and range
lookups, hash lookups, external sorts, sort-merge joins, and BFS
extractions — with a ``reservation`` floor admission checks against the
tenant's fair share before the job may start.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from ..core.machine import Machine
from ..core.stats import IOStats
from ..core.stream import FileStream
from ..graph.adjacency import AdjacencyStore
from ..graph.steps import bfs_extract_steps
from ..relational.steps import sort_merge_join_steps
from ..relational.table import Table
from ..search.btree import BPlusTree
from ..search.hashing import ExtendibleHashTable
from ..sort.steps import merge_sort_steps

QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"


class Job:
    """One schedulable query: a generator factory plus its lifecycle.

    Args:
        name: label for tracing (``tenant/job`` phases) and reports.
            The service suffixes duplicates within a tenant so phases
            never collide.
        make: callable ``make(budget) -> generator`` building the
            cooperative generator; ``budget`` is the owning tenant's
            :class:`~repro.core.memory.SubBudget`.
        reservation: records of the tenant's share this job needs to
            make progress — the admission floor.  ``0`` for pool-served
            lookups (the pool's cache is accounted on the parent ledger
            as reclaimable memory, not against the tenant's hard share).
    """

    def __init__(self, name: str, make: Callable[[Any], Any],
                 reservation: int = 0):
        self.name = name
        self.make = make
        self.reservation = reservation
        self.tenant = None  # set at submit
        self.status = QUEUED
        self.gen = None
        self.pending = None  # payloads to send into the generator next
        self.result: Any = None
        self.error: Optional[BaseException] = None
        self.submit_stats: Optional[IOStats] = None
        self.latency_io: Optional[int] = None
        self.latency_wall: Optional[int] = None

    def start(self, budget) -> None:
        """Materialize the generator against the tenant's sub-budget."""
        self.gen = self.make(budget)
        self.status = RUNNING

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Job({self.name!r}, {self.status})"


# ----------------------------------------------------------------------
# job factories — one per cooperative entry point
# ----------------------------------------------------------------------
def btree_lookup_job(tree: BPlusTree, key: Any, default: Any = None,
                     name: str = "btree-get") -> Job:
    """A B+-tree point lookup (OLTP traffic): ``Θ(log_B N)`` pool reads,
    no hard reservation."""
    return Job(name, lambda budget: tree.lookup_steps(key, default))


def btree_range_job(tree: BPlusTree, low: Any, high: Any,
                    name: str = "btree-range") -> Job:
    """A B+-tree range lookup: root-to-leaf walk plus the leaf chain,
    candidate leaves batched into one intent — ``O(log_B N + Z/B)``
    I/Os for ``Z`` reported items."""
    return Job(name, lambda budget: tree.range_steps(low, high))


def hash_lookup_job(table: ExtendibleHashTable, key: Any,
                    default: Any = None, name: str = "hash-get") -> Job:
    """An extendible-hashing point lookup: ``O(1)`` expected I/Os —
    one bucket read plus rare overflow-chain reads — with no hard
    reservation."""
    return Job(name, lambda budget: table.lookup_steps(key, default))


def sort_job(machine: Machine, stream: FileStream,
             key: Optional[Callable[[Any], Any]] = None,
             name: str = "sort") -> Job:
    """An external merge sort (OLAP traffic).  The memoryload adapts to
    the share actually available; the reservation floor is the minimum
    to merge at all — two cursor frames plus the output buffer."""
    return Job(
        name,
        lambda budget: merge_sort_steps(
            machine, stream, key=key, budget=budget, name=name
        ),
        reservation=3 * machine.block_size,
    )


def pipeline_job(machine: Machine, stream: FileStream,
                 key: Optional[Callable[[Any], Any]] = None,
                 map_fn: Optional[Callable[[Any], Any]] = None,
                 filter_fn: Optional[Callable[[Any], bool]] = None,
                 name: str = "pipeline") -> Job:
    """A fused scan → filter → map → sort (OLAP traffic): the
    record-wise stages run inside run formation, so the transformed
    intermediate is never written.  Same reservation floor as
    :func:`sort_job` — the fusion saves I/Os, not frames."""
    from ..pipeline.steps import pipeline_sort_steps

    return Job(
        name,
        lambda budget: pipeline_sort_steps(
            machine, stream, key=key, map_fn=map_fn,
            filter_fn=filter_fn, budget=budget, name=name,
        ),
        reservation=3 * machine.block_size,
    )


def join_job(left: Table, right: Table, left_column: str,
             right_column: str, name: str = "join") -> Job:
    """A cooperative sort-merge join (OLAP traffic): both sorts plus the
    merge, all charged to the tenant.  The floor covers the widest
    stage — two cursors, the output buffer, and one buffered join-key
    group record."""
    machine = left.machine
    return Job(
        name,
        lambda budget: sort_merge_join_steps(
            left, right, left_column, right_column, budget=budget,
            name=name,
        ),
        reservation=3 * machine.block_size + 1,
    )


def bfs_job(machine: Machine, adjacency: AdjacencyStore, source: int,
            name: str = "bfs") -> Job:
    """A semi-external BFS extraction in ``O(V + E/B)`` I/Os: the
    ``V``-record vertex state is the reservation — the survey's
    ``V ≤ M`` assumption enforced against the *tenant's share*, not
    the whole machine."""
    return Job(
        name,
        lambda budget: bfs_extract_steps(
            machine, adjacency, source, budget=budget
        ),
        reservation=adjacency.num_vertices,
    )

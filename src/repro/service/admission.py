"""Admission control: a bounded queue with fair-share-aware starts.

Three gates stand between ``submit`` and a running job:

1. **Feasibility** — a job whose reservation exceeds its tenant's whole
   share can never start; it is rejected outright
   (:class:`~repro.core.exceptions.AdmissionError`), not queued to
   starve.
2. **The bounded queue** — at most ``max_queued`` jobs wait across all
   tenants; submission beyond that is rejected (backpressure instead of
   unbounded buffering).
3. **Start gating** — each admission pass scans the queue FIFO and
   starts a job only when its tenant is under its concurrency cap and
   its reservation fits the share's current headroom (unreserved share
   plus permitted borrowing).  A job blocked on headroom registers its
   unmet demand with the :class:`~repro.core.memory.FairShare`, which
   immediately stops other tenants borrowing beyond their shares —
   the deficit-aware reclaim rule — and defers the tenant's later jobs
   too, preserving per-tenant FIFO order.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional

from ..core.exceptions import AdmissionError
from ..core.memory import FairShare
from .jobs import Job


class AdmissionController:
    """Bounded-queue admission against a fair-share partition."""

    def __init__(self, fair: FairShare, max_queued: int = 64):
        self.fair = fair
        self.max_queued = max_queued
        self.queue: Deque[Job] = deque()

    @property
    def pending(self) -> int:
        """Jobs waiting in the admission queue."""
        return len(self.queue)

    def submit(self, tenant, job: Job) -> None:
        """Queue ``job`` for ``tenant`` or reject it.

        Raises:
            AdmissionError: the reservation cannot ever fit the
                tenant's share, or the bounded queue is full.
        """
        if job.reservation > tenant.share.capacity:
            tenant.metrics.rejected += 1
            raise AdmissionError(
                f"job {job.name!r}: reservation of {job.reservation} "
                f"records exceeds tenant {tenant.name!r}'s whole share "
                f"of {tenant.share.capacity}"
            )
        if len(self.queue) >= self.max_queued:
            tenant.metrics.rejected += 1
            raise AdmissionError(
                f"admission queue full ({self.max_queued} jobs waiting); "
                f"job {job.name!r} rejected"
            )
        job.tenant = tenant
        self.queue.append(job)
        tenant.metrics.submitted += 1

    def admit(self, slots: Optional[int] = None) -> List[Job]:
        """One admission pass: start every queued job whose tenant has a
        free slot and whose reservation fits the share's headroom.
        Returns the jobs started.

        Args:
            slots: optional global cap on how many jobs to start this
                pass (the service uses it to enforce a service-wide
                concurrency limit, e.g. 1 for a serial baseline).

        Demand registration is re-derived from scratch each pass, so a
        deficit clears the moment the blocked job starts (or is no
        longer first in its tenant's line).
        """
        started: List[Job] = []
        deferred: Dict[str, bool] = {}
        seen_tenants = {job.tenant.name: job.tenant for job in self.queue}
        for name in seen_tenants:
            self.fair.clear_demand(name)
        remaining: Deque[Job] = deque()
        while self.queue:
            job = self.queue.popleft()
            tenant = job.tenant
            if slots is not None and len(started) >= slots:
                remaining.append(job)
                continue
            if deferred.get(tenant.name):
                # Keep per-tenant FIFO: a blocked head blocks the line.
                remaining.append(job)
                continue
            if len(tenant.running) >= tenant.max_running:
                deferred[tenant.name] = True
                remaining.append(job)
                continue
            if job.reservation > tenant.share.headroom():
                # Under-share demand stops other tenants borrowing
                # until this job can start.
                self.fair.register_demand(tenant.name, job.reservation)
                deferred[tenant.name] = True
                remaining.append(job)
                continue
            job.start(tenant.share)
            tenant.running.append(job)
            tenant.metrics.admitted += 1
            started.append(job)
        self.queue = remaining
        return started

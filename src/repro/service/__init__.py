"""Multi-tenant query service over one shared external-memory machine.

The survey's model gives one algorithm the whole memory hierarchy; a
production system serves many concurrent queries from many tenants.
This package closes that gap:

* :class:`~repro.service.service.QueryService` — admits, schedules, and
  meters cooperative jobs, interleaving their I/O intents through
  shared parallel-disk waves.
* :class:`~repro.service.jobs.Job` and its factories — B+-tree point
  and range lookups, hash lookups, external sorts, sort-merge joins,
  BFS extractions — wrapping the substrate's intent-yielding generator
  entry points.
* :class:`~repro.service.admission.AdmissionController` — bounded
  queue, per-tenant concurrency caps, fair-share-aware start gating
  with deficit-aware borrowing.
* :class:`~repro.service.metrics.TenantMetrics` — per-tenant I/O
  attribution and p50/p99 latency on both the transfer-step and
  wall-step clocks.

Memory is partitioned by :class:`~repro.core.memory.FairShare` /
:class:`~repro.core.memory.SubBudget` (weighted shares that sum to
``M``, hard floors, deficit-aware borrowing); the intent protocol
lives in :mod:`repro.core.intents` and is re-exported here.
"""

from ..core.exceptions import AdmissionError, ShareLimitExceeded
from ..core.intents import PoolRead, StreamRead, drive, fulfill
from ..core.memory import FairShare, SubBudget
from .admission import AdmissionController
from .jobs import (
    DONE,
    FAILED,
    QUEUED,
    RUNNING,
    Job,
    bfs_job,
    btree_lookup_job,
    btree_range_job,
    hash_lookup_job,
    join_job,
    pipeline_job,
    sort_job,
)
from .metrics import TenantMetrics, nearest_rank
from .service import QueryService, Tenant

__all__ = [
    "QueryService",
    "Tenant",
    "Job",
    "AdmissionController",
    "TenantMetrics",
    "nearest_rank",
    "btree_lookup_job",
    "btree_range_job",
    "hash_lookup_job",
    "sort_job",
    "pipeline_job",
    "join_job",
    "bfs_job",
    "QUEUED",
    "RUNNING",
    "DONE",
    "FAILED",
    "PoolRead",
    "StreamRead",
    "drive",
    "fulfill",
    "FairShare",
    "SubBudget",
    "AdmissionError",
    "ShareLimitExceeded",
]

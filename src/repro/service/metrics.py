"""Per-tenant service metrics: I/O attribution and tail latency.

Latencies are measured on the machine's two global clocks — *I/O
steps* (:attr:`~repro.core.stats.IOStats.total_steps`, transfers only)
and *wall steps* (:attr:`~repro.core.stats.IOStats.wall_steps`,
transfers plus stalls) — as the clock advance between a job's
submission and its completion.  That makes a latency the whole-system
time a job waited plus ran, queueing included, which is what a tenant
experiences; the spread between the two clocks is exactly the stall
time fault plans injected along the way.

Percentiles use the nearest-rank method (the value at rank
``ceil(p/100 · n)``), the standard for reporting tail latency without
interpolation inventing values that never occurred.
"""

from __future__ import annotations

from math import ceil
from typing import List, Optional

from ..core.stats import IOStats


# em: ok(EM003) pure statistic over in-RAM latency samples, no machine
def nearest_rank(values: List[int], pct: float) -> Optional[int]:
    """The nearest-rank ``pct``-th percentile of ``values`` (``None``
    when empty).  ``pct`` is in ``(0, 100]``."""
    if not values:
        return None
    ordered = sorted(values)  # em: ok(EM004) latency samples, one per job
    rank = max(1, ceil(pct / 100.0 * len(ordered)))
    return ordered[min(rank, len(ordered)) - 1]


class TenantMetrics:
    """Counters, I/O totals, and latency samples for one tenant."""

    def __init__(self):
        self.submitted = 0
        self.admitted = 0
        self.rejected = 0
        self.completed = 0
        self.failed = 0
        #: Sum of the machine-stats deltas measured around this tenant's
        #: scheduling rounds: its reads/writes/steps *and* the stalls
        #: its own faults cost it (other tenants' rounds never land
        #: here — the fault-isolation ledger).
        self.io = IOStats()
        #: Completion latencies on the transfer-steps clock.
        self.latency_io: List[int] = []
        #: Completion latencies on the wall-steps clock (stalls included).
        self.latency_wall: List[int] = []

    def charge(self, delta: IOStats) -> None:
        """Add one scheduling round's machine-stats delta."""
        self.io = self.io + delta

    def record_latency(self, io_steps: int, wall_steps: int) -> None:
        """Record one completed job's latencies on both clocks."""
        self.latency_io.append(io_steps)
        self.latency_wall.append(wall_steps)

    def p50_io(self) -> Optional[int]:
        return nearest_rank(self.latency_io, 50)

    def p99_io(self) -> Optional[int]:
        return nearest_rank(self.latency_io, 99)

    def p50_wall(self) -> Optional[int]:
        return nearest_rank(self.latency_wall, 50)

    def p99_wall(self) -> Optional[int]:
        return nearest_rank(self.latency_wall, 99)

    def snapshot(self) -> dict:
        """A JSON-able summary (benchmark records and reports)."""
        return {
            "submitted": self.submitted,
            "admitted": self.admitted,
            "rejected": self.rejected,
            "completed": self.completed,
            "failed": self.failed,
            "reads": self.io.reads,
            "writes": self.io.writes,
            "io_steps": self.io.total_steps,
            "wall_steps": self.io.wall_steps,
            "stall_steps": self.io.stall_steps,
            "faults": self.io.faults,
            "retries": self.io.retries,
            "p50_io": self.p50_io(),
            "p99_io": self.p99_io(),
            "p50_wall": self.p50_wall(),
            "p99_wall": self.p99_wall(),
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TenantMetrics(completed={self.completed}, "
            f"failed={self.failed}, io_steps={self.io.total_steps}, "
            f"wall_steps={self.io.wall_steps})"
        )

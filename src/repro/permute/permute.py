"""Permuting: the survey's sharpest separation result.

Rearranging ``N`` records into a given order looks trivial in RAM (``N``
moves) but costs ``Θ(min(N, Sort(N)))`` I/Os in external memory: moving
each record to its target block individually pays up to one I/O per
record, while routing records with a sort pays the full sorting bound —
and *neither* can be beaten.  For realistic ``B`` the sort branch wins,
which is why "just permute it" is as expensive as sorting on disk.

Three entry points:

* :func:`permute_naive` — one read-modify-write per record against the
  target block file, with a one-frame write cache for lucky locality.
* :func:`permute_by_sort` — tag each record with its target index and
  externally sort by it.
* :func:`permute` — the optimal dispatcher choosing the cheaper branch
  from the closed-form bounds.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence

from ..core.blockfile import BlockFile
from ..core.bounds import sort_io
from ..core.exceptions import ConfigurationError
from ..core.machine import Machine
from ..core.stream import FileStream
from ..sort.merge import external_merge_sort


def _check_lengths(stream: FileStream, targets: Sequence[int]) -> None:
    if len(stream) != len(targets):
        raise ConfigurationError(
            f"permutation length {len(targets)} does not match stream "
            f"length {len(stream)}"
        )
    if sorted(targets) != list(range(len(targets))):
        raise ConfigurationError(
            "targets must be a permutation of 0..N-1"
        )


def permute_naive(
    machine: Machine,
    stream: FileStream,
    targets: Sequence[int],
    validate: bool = True,
) -> FileStream:
    """Place record ``i`` of ``stream`` at position ``targets[i]`` by
    read-modify-writing target blocks: up to 2 I/Os per record.

    A single cached output frame coalesces consecutive writes to the same
    block, so an identity-like permutation degrades gracefully to a scan.
    ``targets`` is the in-memory permutation vector (the survey treats the
    permutation as given; its transfer cost is identical for both
    strategies and is left out on both sides).
    """
    if validate:
        _check_lengths(stream, targets)
    n = len(stream)
    B = machine.block_size
    num_blocks = (n + B - 1) // B
    output = BlockFile(machine, num_blocks, name="permute/out")
    sizes = [min(B, n - index * B) for index in range(num_blocks)]

    with machine.budget.reserve(machine.block_size):  # the cached frame
        cached_index: Optional[int] = None
        cached_frame: List[Any] = []

        def load(index: int) -> None:
            nonlocal cached_index, cached_frame
            if cached_index == index:
                return
            if cached_index is not None:
                output.write_block(cached_index, cached_frame)
            frame = output.read_block(index)
            frame.extend([None] * (sizes[index] - len(frame)))
            cached_index, cached_frame = index, frame

        for position, record in enumerate(stream):
            target = targets[position]
            load(target // B)
            cached_frame[target % B] = record
        if cached_index is not None:
            output.write_block(cached_index, cached_frame)

    result = FileStream(machine, name="permuted")
    for index in range(num_blocks):
        result.append_block(output.read_block(index))
    output.delete()
    return result.finalize()


def permute_by_sort(
    machine: Machine,
    stream: FileStream,
    targets: Sequence[int],
    validate: bool = True,
) -> FileStream:
    """Route records to their targets with an external sort:
    ``O(Sort(N))`` I/Os regardless of the permutation's shape."""
    if validate:
        _check_lengths(stream, targets)
    tagged = FileStream(machine, name="permute/tagged")
    for position, record in enumerate(stream):
        tagged.append((targets[position], record))
    tagged.finalize()
    ordered = external_merge_sort(
        machine, tagged, key=lambda pair: pair[0], keep_input=False
    )
    result = FileStream(machine, name="permuted")
    for _, record in ordered:
        result.append(record)
    ordered.delete()
    return result.finalize()


def permute(
    machine: Machine,
    stream: FileStream,
    targets: Sequence[int],
) -> FileStream:
    """Permute optimally: ``Θ(min(N, Sort(N)))`` I/Os.

    Chooses :func:`permute_naive` when ``2N`` (its worst case) beats the
    sorting bound — tiny blocks — and :func:`permute_by_sort` otherwise.
    """
    _check_lengths(stream, targets)
    n = len(stream)
    naive_cost = 2 * n
    sort_cost = 3 * sort_io(n, machine.M, machine.B)  # tag + sort + strip
    if naive_cost <= sort_cost:
        return permute_naive(machine, stream, targets, validate=False)
    return permute_by_sort(machine, stream, targets, validate=False)


def bit_reversal_permutation(n_bits: int) -> List[int]:
    """The FFT's bit-reversal permutation on ``2**n_bits`` positions —
    the survey's canonical *hard* permutation (no locality at any block
    granularity)."""
    n = 1 << n_bits
    targets = []
    for i in range(n):
        reversed_bits = 0
        x = i
        for _ in range(n_bits):
            reversed_bits = (reversed_bits << 1) | (x & 1)
            x >>= 1
        targets.append(reversed_bits)
    return targets

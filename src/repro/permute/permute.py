"""Permuting: the survey's sharpest separation result.

Rearranging ``N`` records into a given order looks trivial in RAM (``N``
moves) but costs ``Θ(min(N, Sort(N)))`` I/Os in external memory: moving
each record to its target block individually pays up to one I/O per
record, while routing records with a sort pays the full sorting bound —
and *neither* can be beaten.  For realistic ``B`` the sort branch wins,
which is why "just permute it" is as expensive as sorting on disk.

Three entry points:

* :func:`permute_naive` — one read-modify-write per record against the
  target block file, with a one-frame write cache for lucky locality.
* :func:`permute_by_sort` — tag each record with its target index and
  externally sort by it.
* :func:`permute` — the optimal dispatcher choosing the cheaper branch
  from the closed-form bounds.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence

from ..analysis.sanitizer import io_bound
from ..core.blockfile import BlockFile
from ..core.bounds import scan_io, sort_io
from ..core.exceptions import ConfigurationError
from ..core.machine import Machine
from ..core.stream import FileStream
from ..sort.merge import external_merge_sort


#: bits of permutation-validation bitmap charged as one budget record
#: (a record is at least one machine word)
_BITS_PER_RECORD = 64


def _check_lengths(stream: FileStream, targets: Sequence[int]) -> None:
    """Validate that ``targets`` is a permutation of ``0..N-1`` with
    budget-charged working space instead of O(N) in-RAM copies.

    Instead of materializing ``sorted(targets)`` plus ``list(range(N))``,
    a seen-bitmap (one budget record per 64 bits) marks each target; a
    bitmap that does not fit the available budget is windowed over the
    value range, re-scanning the in-memory ``targets`` vector once per
    window.  No I/O is performed; working memory is whatever the budget
    can spare, down to a single record.
    """
    n = len(stream)
    if n != len(targets):
        raise ConfigurationError(
            f"permutation length {len(targets)} does not match stream "
            f"length {len(stream)}"
        )
    if n == 0:
        return
    machine = stream.machine
    bitmap_records = (n + _BITS_PER_RECORD - 1) // _BITS_PER_RECORD
    reserve = max(1, min(bitmap_records, machine.budget.available))
    with machine.budget.reserve(reserve):
        window_bits = reserve * _BITS_PER_RECORD
        for base in range(0, n, window_bits):
            high = min(base + window_bits, n)
            seen = bytearray((high - base + 7) // 8)
            for target in targets:
                if base == 0 and not 0 <= target < n:
                    raise ConfigurationError(
                        "targets must be a permutation of 0..N-1; "
                        f"{target} is out of range"
                    )
                if not base <= target < high:
                    continue
                offset = target - base
                mask = 1 << (offset & 7)
                if seen[offset >> 3] & mask:
                    raise ConfigurationError(
                        "targets must be a permutation of 0..N-1; "
                        f"{target} appears more than once"
                    )
                seen[offset >> 3] |= mask


def _naive_theory(machine: Machine, n: int) -> int:
    """2 I/Os per record plus the input scan and the output copy."""
    return 2 * n + 4 * scan_io(n, machine.B, machine.D)


def _by_sort_theory(machine: Machine, n: int) -> int:
    """One external sort of the tagged records plus tag/strip scans."""
    return (sort_io(n, machine.M, machine.B, machine.D)
            + 4 * scan_io(n, machine.B, machine.D))


@io_bound(_naive_theory, factor=2.0)
def permute_naive(
    machine: Machine,
    stream: FileStream,
    targets: Sequence[int],
    validate: bool = True,
) -> FileStream:
    """Place record ``i`` of ``stream`` at position ``targets[i]`` by
    read-modify-writing target blocks: up to 2 I/Os per record.

    A single cached output frame coalesces consecutive writes to the same
    block, so an identity-like permutation degrades gracefully to a scan.
    ``targets`` is the in-memory permutation vector (the survey treats the
    permutation as given; its transfer cost is identical for both
    strategies and is left out on both sides).
    """
    if validate:
        _check_lengths(stream, targets)
    n = len(stream)
    B = machine.block_size
    num_blocks = (n + B - 1) // B
    sizes = [min(B, n - index * B) for index in range(num_blocks)]

    # The block file's staging frame doubles as the cached output frame.
    with machine.trace("permute-naive"), \
            BlockFile(machine, num_blocks, name="permute/out") as output:
        cached_index: Optional[int] = None
        cached_frame: List[Any] = []

        def load(index: int) -> None:
            nonlocal cached_index, cached_frame
            if cached_index == index:
                return
            if cached_index is not None:
                output.write_block(cached_index, cached_frame)
            frame = output.read_block(index)
            frame.extend([None] * (sizes[index] - len(frame)))
            cached_index, cached_frame = index, frame

        for position, record in enumerate(stream):
            target = targets[position]
            load(target // B)
            cached_frame[target % B] = record
        if cached_index is not None:
            output.write_block(cached_index, cached_frame)

        result = FileStream(machine, name="permuted")
        for index in range(num_blocks):
            result.append_block(output.read_block(index))
        output.delete()
    return result.finalize()


@io_bound(_by_sort_theory, factor=3.0)
def permute_by_sort(
    machine: Machine,
    stream: FileStream,
    targets: Sequence[int],
    validate: bool = True,
) -> FileStream:
    """Route records to their targets with an external sort:
    ``O(Sort(N))`` I/Os regardless of the permutation's shape."""
    if validate:
        _check_lengths(stream, targets)
    tagged = FileStream(machine, name="permute/tagged")
    with machine.trace("tag"):
        for position, record in enumerate(stream):
            tagged.append((targets[position], record))
        tagged.finalize()
    # em: ok(EM103) fusion candidate: single-scan consumer, future Sorter refactor
    ordered = external_merge_sort(
        machine, tagged, key=lambda pair: pair[0], keep_input=False
    )
    result = FileStream(machine, name="permuted")
    with machine.trace("strip"):
        for _, record in ordered:
            result.append(record)
        ordered.delete()
        return result.finalize()


@io_bound(lambda machine, n: min(_naive_theory(machine, n),
                                 _by_sort_theory(machine, n)),
          factor=3.0)
def permute(
    machine: Machine,
    stream: FileStream,
    targets: Sequence[int],
) -> FileStream:
    """Permute optimally: ``Θ(min(N, Sort(N)))`` I/Os.

    Chooses :func:`permute_naive` when ``2N`` (its worst case) beats the
    sorting bound — tiny blocks — and :func:`permute_by_sort` otherwise.
    """
    _check_lengths(stream, targets)
    n = len(stream)
    naive_cost = 2 * n
    sort_cost = 3 * sort_io(n, machine.M, machine.B)  # tag + sort + strip
    if naive_cost <= sort_cost:
        return permute_naive(machine, stream, targets, validate=False)
    return permute_by_sort(machine, stream, targets, validate=False)


# em: ok(EM003) pure in-RAM permutation generator: builds the target
# vector the model treats as given; performs no I/O
def bit_reversal_permutation(n_bits: int) -> List[int]:
    """The FFT's bit-reversal permutation on ``2**n_bits`` positions —
    the survey's canonical *hard* permutation (no locality at any block
    granularity)."""
    n = 1 << n_bits
    targets = []
    for i in range(n):
        reversed_bits = 0
        x = i
        for _ in range(n_bits):
            reversed_bits = (reversed_bits << 1) | (x & 1)
            x >>= 1
        targets.append(reversed_bits)
    return targets

"""Permuting in external memory: ``Θ(min(N, Sort(N)))``."""

from .permute import (
    bit_reversal_permutation,
    permute,
    permute_by_sort,
    permute_naive,
)

__all__ = [
    "permute",
    "permute_naive",
    "permute_by_sort",
    "bit_reversal_permutation",
]

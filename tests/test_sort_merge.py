"""Tests for the loser tree, merge passes, and external merge sort."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    ConfigurationError,
    FileStream,
    Machine,
    MemoryLimitExceeded,
    merge_passes,
    scan_io,
    sort_io,
)
from repro.sort import (
    LoserTree,
    external_merge_sort,
    is_sorted_stream,
    merge_streams,
    two_way_merge_sort,
)
from repro.workloads import uniform_ints


def machine(B=16, m=8):
    return Machine(block_size=B, memory_blocks=m)


class TestLoserTree:
    def test_merges_two_sources(self):
        tree = LoserTree([iter([1, 3, 5]), iter([2, 4, 6])])
        assert list(tree) == [1, 2, 3, 4, 5, 6]

    def test_single_source_passthrough(self):
        assert list(LoserTree([iter([1, 2, 3])])) == [1, 2, 3]

    def test_empty_sources(self):
        assert list(LoserTree([iter([]), iter([])])) == []

    def test_mixed_empty_and_nonempty(self):
        tree = LoserTree([iter([]), iter([2, 4]), iter([]), iter([1])])
        assert list(tree) == [1, 2, 4]

    def test_no_sources_rejected(self):
        with pytest.raises(ConfigurationError):
            LoserTree([])

    def test_stability_ties_go_to_lower_source(self):
        a = [("x", 0), ("x", 1)]
        b = [("x", 2)]
        tree = LoserTree([iter(a), iter(b)], key=lambda r: r[0])
        assert list(tree) == [("x", 0), ("x", 1), ("x", 2)]

    def test_key_function(self):
        a = [(3, "a"), (1, "b")]
        b = [(2, "c")]
        tree = LoserTree(
            [iter(sorted(a)), iter(b)], key=lambda r: r[0]
        )
        assert [r[0] for r in tree] == [1, 2, 3]

    @given(
        st.lists(
            st.lists(st.integers(-1000, 1000), max_size=50),
            min_size=1,
            max_size=9,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_matches_sorted_concatenation(self, lists):
        sources = [iter(sorted(chunk)) for chunk in lists]
        expected = sorted(x for chunk in lists for x in chunk)
        assert list(LoserTree(sources)) == expected

    @given(st.integers(2, 33), st.integers(0, 400))
    @settings(max_examples=40, deadline=None)
    def test_arbitrary_arity_round_robin_split(self, k, n):
        data = sorted(uniform_ints(n, seed=k))
        chunks = [data[i::k] for i in range(k)]
        tree = LoserTree([iter(c) for c in chunks])
        assert list(tree) == data


class TestMergeStreams:
    def test_merge_two_streams(self):
        m = machine()
        a = FileStream.from_records(m, [1, 3, 5])
        b = FileStream.from_records(m, [2, 4])
        out = merge_streams(m, [a, b])
        assert list(out) == [1, 2, 3, 4, 5]

    def test_merge_empty_list(self):
        m = machine()
        assert list(merge_streams(m, [])) == []

    def test_io_cost_single_pass(self):
        m = machine()
        a = FileStream.from_records(m, sorted(uniform_ints(320, seed=1)))
        b = FileStream.from_records(m, sorted(uniform_ints(320, seed=2)))
        with m.measure() as io:
            merge_streams(m, [a, b])
        assert io.reads == scan_io(640, m.B)
        assert io.writes == scan_io(640, m.B)

    def test_fan_in_beyond_memory_rejected_by_budget(self):
        m = machine(B=16, m=4)  # only 4 frames
        streams = [
            FileStream.from_records(m, sorted(uniform_ints(64, seed=i)))
            for i in range(6)
        ]
        with pytest.raises(MemoryLimitExceeded):
            merge_streams(m, streams)


class TestExternalMergeSort:
    def test_sorts_random_input(self):
        m = machine()
        data = uniform_ints(3000, seed=11)
        out = external_merge_sort(m, FileStream.from_records(m, data))
        assert list(out) == sorted(data)

    def test_in_memory_case_single_pass(self):
        m = machine()
        data = uniform_ints(100, seed=1)  # < M = 128
        s = FileStream.from_records(m, data)
        with m.measure() as io:
            out = external_merge_sort(m, s)
        assert list(out) == sorted(data)
        assert io.total == 2 * scan_io(100, m.B)

    def test_io_matches_closed_form_bound(self):
        m = machine()
        data = uniform_ints(5000, seed=1)
        s = FileStream.from_records(m, data)
        with m.measure() as io:
            external_merge_sort(m, s)
        assert io.total == sort_io(5000, m.M, m.B)

    def test_two_way_needs_more_io(self):
        data = uniform_ints(5000, seed=1)
        m1 = machine()
        with m1.measure() as io_full:
            external_merge_sort(m1, FileStream.from_records(m1, data))
        m2 = machine()
        with m2.measure() as io_two:
            two_way_merge_sort(m2, FileStream.from_records(m2, data))
        assert io_two.total > io_full.total
        # pass ratio should follow the bound
        expected_ratio = merge_passes(5000, 128, 16, fan_in=2) / merge_passes(
            5000, 128, 16
        )
        assert io_two.total / io_full.total == pytest.approx(
            expected_ratio, rel=0.25
        )

    def test_stability(self):
        m = machine()
        data = [(i % 7, i) for i in range(1000)]
        out = external_merge_sort(
            m, FileStream.from_records(m, data), key=lambda r: r[0]
        )
        result = list(out)
        assert result == sorted(data, key=lambda r: r[0])  # Timsort stable

    def test_replacement_selection_strategy(self):
        m = machine()
        data = uniform_ints(3000, seed=13)
        out = external_merge_sort(
            m,
            FileStream.from_records(m, data),
            run_strategy="replacement",
        )
        assert list(out) == sorted(data)

    def test_replacement_selection_saves_a_pass_near_boundary(self):
        """With ceil(N/M) runs just above a power of the fan-in, the ~2x
        longer replacement-selection runs remove one whole merge pass."""
        data = uniform_ints(6600, seed=13)
        m1 = machine(B=16, m=8)
        with m1.measure() as io_load:
            external_merge_sort(
                m1, FileStream.from_records(m1, data), run_strategy="load"
            )
        m2 = machine(B=16, m=8)
        with m2.measure() as io_repl:
            external_merge_sort(
                m2,
                FileStream.from_records(m2, data),
                run_strategy="replacement",
            )
        assert io_repl.total < io_load.total

    def test_unknown_strategy_rejected(self):
        m = machine()
        s = FileStream.from_records(m, [1])
        with pytest.raises(ConfigurationError):
            external_merge_sort(m, s, run_strategy="quantum")

    def test_fan_in_below_two_rejected(self):
        m = machine()
        s = FileStream.from_records(m, [1])
        with pytest.raises(ConfigurationError):
            external_merge_sort(m, s, fan_in=1)

    def test_empty_stream(self):
        m = machine()
        out = external_merge_sort(m, FileStream(m).finalize())
        assert list(out) == []

    def test_single_record(self):
        m = machine()
        out = external_merge_sort(m, FileStream.from_records(m, [42]))
        assert list(out) == [42]

    def test_all_equal_records(self):
        m = machine()
        out = external_merge_sort(m, FileStream.from_records(m, [5] * 999))
        assert list(out) == [5] * 999

    def test_intermediate_runs_deleted(self):
        m = machine()
        data = uniform_ints(5000, seed=1)
        s = FileStream.from_records(m, data)
        blocks_before = m.disk.allocated_blocks
        out = external_merge_sort(m, s)
        # input + output only; no leaked run blocks
        assert m.disk.allocated_blocks == blocks_before + out.num_blocks

    def test_keep_input_false_frees_input(self):
        m = machine()
        data = uniform_ints(1000, seed=1)
        s = FileStream.from_records(m, data)
        out = external_merge_sort(m, s, keep_input=False)
        assert m.disk.allocated_blocks == out.num_blocks

    @given(st.lists(st.integers(-10**6, 10**6), max_size=600))
    @settings(max_examples=30, deadline=None)
    def test_property_sorts_any_input(self, data):
        m = machine(B=8, m=4)
        out = external_merge_sort(m, FileStream.from_records(m, data))
        assert list(out) == sorted(data)
        assert m.budget.in_use == 0  # no leaked reservations

    @given(
        st.lists(st.integers(0, 50), max_size=400),
        st.integers(2, 6),
    )
    @settings(max_examples=20, deadline=None)
    def test_property_any_fan_in_sorts(self, data, fan_in):
        m = machine(B=8, m=8)
        out = external_merge_sort(
            m, FileStream.from_records(m, data), fan_in=fan_in
        )
        assert list(out) == sorted(data)

"""Tests for batched segment intersection."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ConfigurationError, Machine, sort_io
from repro.geometry import segment_intersections, segment_intersections_naive
from repro.workloads import orthogonal_segments


def machine(B=16, m=10):
    return Machine(block_size=B, memory_blocks=m)


def brute_force(horizontals, verticals):
    pairs = set()
    for h in horizontals:
        y, x1, x2 = h
        for v in verticals:
            x, y1, y2 = v
            if x1 <= x <= x2 and y1 <= y <= y2:
                pairs.add((h, v))
    return pairs


class TestCorrectness:
    @pytest.mark.parametrize(
        "fn", [segment_intersections, segment_intersections_naive]
    )
    def test_random_segments(self, fn):
        hs, vs = orthogonal_segments(150, 150, extent=1000, max_len=300,
                                     seed=1)
        m = machine()
        assert set(fn(m, hs, vs)) == brute_force(hs, vs)

    @pytest.mark.parametrize(
        "fn", [segment_intersections, segment_intersections_naive]
    )
    def test_no_intersections(self, fn):
        hs = [(0, 0, 10)]
        vs = [(50, 50, 60)]
        m = machine()
        assert list(fn(m, hs, vs)) == []

    @pytest.mark.parametrize(
        "fn", [segment_intersections, segment_intersections_naive]
    )
    def test_touching_endpoints_count(self, fn):
        # Closed segments: sharing a single point intersects.
        hs = [(5, 0, 10)]
        vs = [(10, 5, 9)]
        m = machine()
        assert list(fn(m, hs, vs)) == [((5, 0, 10), (10, 5, 9))]

    @pytest.mark.parametrize(
        "fn", [segment_intersections, segment_intersections_naive]
    )
    def test_empty_inputs(self, fn):
        m = machine()
        assert list(fn(m, [], [])) == []
        assert list(fn(m, [(1, 0, 5)], [])) == []
        assert list(fn(m, [], [(1, 0, 5)])) == []

    def test_cross_pattern(self):
        hs = [(i, 0, 100) for i in range(0, 50, 5)]
        vs = [(j, 0, 100) for j in range(0, 100, 10)]
        m = machine()
        result = set(segment_intersections(m, hs, vs))
        assert len(result) == len(hs) * len(vs)  # full grid of crossings

    def test_degenerate_all_verticals_same_x(self):
        hs = [(y, 0, 10) for y in range(200)]
        vs = [(4, 0, 199)] * 3
        m = machine()
        result = list(segment_intersections(m, hs, vs))
        assert len(result) == 600

    def test_invalid_segment_rejected(self):
        m = machine()
        with pytest.raises(ConfigurationError):
            list(segment_intersections(m, [(0, 10, 0)], []))
        with pytest.raises(ConfigurationError):
            list(segment_intersections(m, [], [(0, 10, 0)]))

    def test_machine_too_small_rejected(self):
        m = Machine(block_size=16, memory_blocks=4)
        with pytest.raises(ConfigurationError):
            segment_intersections(m, [(0, 0, 1)], [])

    def test_recursion_on_large_input(self):
        hs, vs = orthogonal_segments(600, 600, extent=5000, max_len=500,
                                     seed=2)
        m = machine(B=16, m=10)  # M=160 << 1200 events forces recursion
        assert set(segment_intersections(m, hs, vs)) == brute_force(hs, vs)

    def test_no_leaks(self):
        hs, vs = orthogonal_segments(200, 200, seed=3)
        m = machine()
        before = m.disk.allocated_blocks
        out = segment_intersections(m, hs, vs)
        assert m.disk.allocated_blocks == before + out.num_blocks
        assert m.budget.in_use == 0

    @given(
        st.lists(
            st.tuples(st.integers(0, 30), st.integers(0, 30),
                      st.integers(0, 30)),
            max_size=60,
        ),
        st.lists(
            st.tuples(st.integers(0, 30), st.integers(0, 30),
                      st.integers(0, 30)),
            max_size=60,
        ),
    )
    @settings(max_examples=30, deadline=None)
    def test_property_matches_brute_force(self, raw_h, raw_v):
        hs = [(y, min(a, b), max(a, b)) for y, a, b in raw_h]
        vs = [(x, min(a, b), max(a, b)) for x, a, b in raw_v]
        m = machine(B=8, m=10)
        result = list(segment_intersections(m, hs, vs))
        # Duplicated segments may report multiple times; compare multisets.
        from collections import Counter

        expected = Counter()
        for h in hs:
            for v in vs:
                if h[1] <= v[0] <= h[2] and v[1] <= h[0] <= v[2]:
                    expected[(h, v)] += 1
        assert Counter(result) == expected


class TestIOBehaviour:
    def test_sweep_beats_naive_when_horizontals_exceed_memory(self):
        """The baseline's cost is quadratic in ceil(|H|/M) scans of V, so
        the sweep overtakes it once the horizontals span many
        memoryloads (the full crossover series is benchmark F16)."""
        hs, vs = orthogonal_segments(12_000, 12_000, extent=100_000,
                                     max_len=120, seed=4)
        m1 = machine(B=32, m=10)  # M = 320 << 12000
        with m1.measure() as io_sweep:
            segment_intersections(m1, hs, vs)
        m2 = machine(B=32, m=10)
        with m2.measure() as io_naive:
            segment_intersections_naive(m2, hs, vs)
        assert io_sweep.total < io_naive.total

"""Tests for list ranking."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ConfigurationError, Machine
from repro.graph import list_ranking, pointer_chase_ranking
from repro.workloads import random_linked_list


def machine(B=16, m=8):
    return Machine(block_size=B, memory_blocks=m)


def reference_ranks(pairs):
    successor = dict(pairs)
    targets = {s for _, s in pairs if s != -1}
    head = next(v for v in successor if v not in targets)
    ranks = {}
    node, rank = head, 0
    while node != -1:
        ranks[node] = rank
        node = successor[node]
        rank += 1
    return ranks


class TestPointerChase:
    def test_matches_reference(self):
        m = machine()
        pairs = random_linked_list(500, seed=1)
        assert pointer_chase_ranking(m, pairs, 500) == reference_ranks(pairs)

    def test_costs_about_one_io_per_hop(self):
        m = machine(B=16, m=4)
        pairs = random_linked_list(2000, seed=2)
        with m.measure() as io:
            pointer_chase_ranking(m, pairs, 2000)
        assert io.reads > 1500  # nearly every hop misses

    def test_sequential_layout_is_cheap(self):
        """A list stored in logical order degenerates to a scan."""
        m = machine(B=16, m=4)
        pairs = [(i, i + 1) for i in range(1999)] + [(1999, -1)]
        with m.measure() as io:
            pointer_chase_ranking(m, pairs, 2000)
        assert io.reads < 2 * (2000 // 16) + 10

    def test_wrong_count_rejected(self):
        m = machine()
        with pytest.raises(ConfigurationError):
            pointer_chase_ranking(m, [(0, -1)], 2)

    def test_multiple_heads_rejected(self):
        m = machine()
        pairs = [(0, -1), (1, -1)]  # two lists
        with pytest.raises(ConfigurationError):
            pointer_chase_ranking(m, pairs, 2)


class TestContractionRanking:
    def test_matches_reference_small(self):
        m = machine()
        pairs = random_linked_list(50, seed=3)
        assert list_ranking(m, pairs) == reference_ranks(pairs)

    def test_matches_reference_with_recursion(self):
        # N = 2000 >> M = 128 forces several contraction rounds.
        m = machine()
        pairs = random_linked_list(2000, seed=4)
        assert list_ranking(m, pairs) == reference_ranks(pairs)

    def test_matches_pointer_chase(self):
        m1, m2 = machine(), machine()
        pairs = random_linked_list(1200, seed=5)
        assert list_ranking(m1, pairs) == pointer_chase_ranking(
            m2, pairs, 1200
        )

    def test_single_node(self):
        m = machine()
        assert list_ranking(m, [(0, -1)]) == {0: 0}

    def test_two_nodes(self):
        m = machine()
        assert list_ranking(m, [(1, 0), (0, -1)]) == {1: 0, 0: 1}

    def test_empty(self):
        m = machine()
        assert list_ranking(m, []) == {}

    def test_sequential_list(self):
        m = machine()
        pairs = [(i, i + 1) for i in range(999)] + [(999, -1)]
        ranks = list_ranking(m, pairs)
        assert ranks == {i: i for i in range(1000)}

    def test_reverse_stored_list(self):
        m = machine()
        pairs = [(i, i - 1) for i in range(1000, 0, -1)] + [(0, -1)]
        ranks = list_ranking(m, pairs)
        assert ranks[1000] == 0
        assert ranks[0] == 1000

    def test_no_leaks(self):
        m = machine()
        pairs = random_linked_list(1500, seed=6)
        before = m.disk.allocated_blocks
        list_ranking(m, pairs)
        assert m.disk.allocated_blocks == before
        assert m.budget.in_use == 0

    def test_different_seeds_agree(self):
        pairs = random_linked_list(800, seed=7)
        results = {
            frozenset(list_ranking(machine(), pairs, seed=s).items())
            for s in range(3)
        }
        assert len(results) == 1

    @given(st.integers(1, 400), st.integers(0, 10**6))
    @settings(max_examples=20, deadline=None)
    def test_property_matches_reference(self, n, seed):
        m = machine(B=8, m=6)
        pairs = random_linked_list(n, seed=seed)
        assert list_ranking(m, pairs) == reference_ranks(pairs)

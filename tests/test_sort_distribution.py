"""Tests for external distribution sort."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ConfigurationError, FileStream, Machine
from repro.sort import distribution_sort, external_merge_sort, is_sorted_stream
from repro.workloads import (
    duplicate_heavy_ints,
    sorted_ints,
    uniform_ints,
    zipf_ints,
)


def machine(B=16, m=8):
    return Machine(block_size=B, memory_blocks=m)


class TestDistributionSort:
    def test_sorts_random_input(self):
        m = machine()
        data = uniform_ints(3000, seed=21)
        out = distribution_sort(m, FileStream.from_records(m, data))
        assert list(out) == sorted(data)

    def test_sorts_zipf_skewed_input(self):
        m = machine()
        data = zipf_ints(3000, seed=22)
        out = distribution_sort(m, FileStream.from_records(m, data))
        assert list(out) == sorted(data)

    def test_sorts_duplicate_heavy_input(self):
        m = machine()
        data = duplicate_heavy_ints(2000, distinct=3, seed=23)
        out = distribution_sort(m, FileStream.from_records(m, data))
        assert list(out) == sorted(data)

    def test_pathological_single_outlier(self):
        """All-equal keys plus one outlier: equality buckets must prevent
        an infinite partition loop."""
        m = machine()
        data = [5] * 2999 + [7]
        out = distribution_sort(m, FileStream.from_records(m, data))
        assert list(out) == sorted(data)

    def test_already_sorted_input(self):
        m = machine()
        data = sorted_ints(2000)
        out = distribution_sort(m, FileStream.from_records(m, data))
        assert list(out) == data

    def test_empty_stream(self):
        m = machine()
        out = distribution_sort(m, FileStream(m).finalize())
        assert list(out) == []

    def test_in_memory_case(self):
        m = machine()
        data = uniform_ints(50, seed=2)
        out = distribution_sort(m, FileStream.from_records(m, data))
        assert list(out) == sorted(data)

    def test_stability(self):
        m = machine()
        data = [(i % 5, i) for i in range(800)]
        out = distribution_sort(
            m, FileStream.from_records(m, data), key=lambda r: r[0]
        )
        assert list(out) == sorted(data, key=lambda r: r[0])

    def test_key_function(self):
        m = machine()
        data = [(i, 1000 - i) for i in range(500)]
        out = distribution_sort(
            m, FileStream.from_records(m, data), key=lambda r: r[1]
        )
        assert is_sorted_stream(out, key=lambda r: r[1])

    def test_same_result_as_merge_sort(self):
        data = zipf_ints(2500, seed=31)
        m1 = machine()
        merge_result = list(
            external_merge_sort(m1, FileStream.from_records(m1, data))
        )
        m2 = machine()
        dist_result = list(
            distribution_sort(m2, FileStream.from_records(m2, data))
        )
        assert merge_result == dist_result

    def test_io_within_constant_factor_of_merge_sort(self):
        """Same asymptotics: distribution sort should stay within a small
        constant factor of merge sort on uniform data."""
        data = uniform_ints(6000, seed=33)
        m1 = machine()
        with m1.measure() as io_merge:
            external_merge_sort(m1, FileStream.from_records(m1, data))
        m2 = machine()
        with m2.measure() as io_dist:
            distribution_sort(m2, FileStream.from_records(m2, data))
        assert io_dist.total < 4 * io_merge.total

    def test_no_disk_leak(self):
        m = machine()
        data = uniform_ints(2000, seed=4)
        s = FileStream.from_records(m, data)
        out = distribution_sort(m, s)
        assert m.disk.allocated_blocks == s.num_blocks + out.num_blocks

    def test_requires_six_memory_blocks(self):
        m = Machine(block_size=16, memory_blocks=4)
        with pytest.raises(ConfigurationError):
            distribution_sort(m, FileStream(m).finalize())

    def test_explicit_fan_out(self):
        m = machine(m=16)
        data = uniform_ints(2000, seed=5)
        out = distribution_sort(
            m, FileStream.from_records(m, data), fan_out=2
        )
        assert list(out) == sorted(data)

    @given(st.lists(st.integers(0, 30), max_size=500))
    @settings(max_examples=25, deadline=None)
    def test_property_sorts_any_skew(self, data):
        m = machine(B=8, m=6)
        out = distribution_sort(m, FileStream.from_records(m, data))
        assert list(out) == sorted(data)
        assert m.budget.in_use == 0

    @given(st.lists(st.tuples(st.integers(0, 9), st.integers()), max_size=300))
    @settings(max_examples=20, deadline=None)
    def test_property_stable_on_pairs(self, data):
        m = machine(B=8, m=6)
        out = distribution_sort(
            m, FileStream.from_records(m, data), key=lambda r: r[0]
        )
        assert list(out) == sorted(data, key=lambda r: r[0])

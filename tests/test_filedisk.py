"""Tests for the real-file block device (``repro.core.filedisk``).

The contract is bit-compatibility: :class:`FileDiskArray` inherits every
accounting path from the in-memory :class:`~repro.core.disk.DiskArray`,
so any workload must produce *identical* counters (reads, writes,
parallel steps, faults, retries, stalls) on both backends.  On top of
that, only a real file can be torn on real bytes or reopened after a
process death — those recovery stories are covered here and charged
against the metadata-sidecar durability point (:meth:`sync_metadata` /
:meth:`FileDiskArray.open`).
"""

import random

import pytest

from repro.core import Machine
from repro.core.exceptions import ChecksumError, SimulatedCrash
from repro.core.filedisk import FileDiskArray
from repro.core.records import np
from repro.core.stream import FileStream, StripedStream
from repro.faults import FaultPlan, SortManifest, checkpointed_merge_sort
from repro.pipeline.sorter import Sorter
from repro.sort.distribution import distribution_sort
from repro.sort.merge import external_merge_sort

requires_numpy = pytest.mark.skipif(np is None, reason="numpy not available")


def memory_machine(B=8, m=6, D=1):
    return Machine(block_size=B, memory_blocks=m, num_disks=D)


def file_machine(tmp_path, B=8, m=6, D=1, name="disk.blocks"):
    disk = FileDiskArray(B, num_disks=D, path=str(tmp_path / name))
    return Machine(block_size=B, memory_blocks=m, num_disks=D, disk=disk)


def shuffled(n, seed=0):
    rng = random.Random(seed)
    return [rng.randrange(10 * n) for _ in range(n)]


# ----------------------------------------------------------------------
# counter parity: same workload, both backends, identical IOStats
# ----------------------------------------------------------------------
def _merge_load(m, data):
    stream = FileStream.from_records(m, data)
    return list(external_merge_sort(m, stream, fan_in=2))


def _merge_replacement(m, data):
    stream = FileStream.from_records(m, data)
    return list(external_merge_sort(m, stream, fan_in=2,
                                    run_strategy="replacement"))


def _distribution(m, data):
    stream = FileStream.from_records(m, data)
    return list(distribution_sort(m, stream))


def _sorter_pipeline(m, data):
    sorter = Sorter(m, fan_in=2)
    for record in data:
        sorter.push(record)
    return list(sorter.finish())


def _faulty_merge(m, data):
    with m.inject_faults(FaultPlan(seed=5, read_error_rate=0.08,
                                   write_error_rate=0.04)):
        stream = FileStream.from_records(m, data)
        return list(external_merge_sort(m, stream, fan_in=2))


WORKLOADS = {
    "merge-load": _merge_load,
    "merge-replacement": _merge_replacement,
    "distribution": _distribution,
    "sorter-pipeline": _sorter_pipeline,
    "faulty-merge": _faulty_merge,
}


class TestCounterParity:
    @pytest.mark.parametrize("name", sorted(WORKLOADS))
    def test_sort_family_counters_identical(self, tmp_path, name):
        workload = WORKLOADS[name]
        data = shuffled(300, seed=3)
        reference_machine = memory_machine()
        reference = workload(reference_machine, data)
        file_backed = file_machine(tmp_path, name=f"{name}.blocks")
        result = workload(file_backed, data)
        assert result == reference == sorted(data)
        # Whole-snapshot equality: every field of IOStats, including
        # faults/retries/stall_steps on the chaos workload.
        assert file_backed.stats() == reference_machine.stats()
        assert (file_backed.disk.allocated_blocks
                == reference_machine.disk.allocated_blocks)

    def test_striped_scan_steps_identical_on_two_disks(self, tmp_path):
        data = shuffled(128, seed=4)
        reference_machine = memory_machine(D=2)
        list(StripedStream.from_records(reference_machine, data))
        file_backed = file_machine(tmp_path, D=2)
        list(StripedStream.from_records(file_backed, data))
        stats = file_backed.stats()
        assert stats == reference_machine.stats()
        # D=2 striping actually halves the steps — the parity is not
        # trivially comparing two single-disk tallies.
        assert stats.read_steps < stats.reads

    @requires_numpy
    def test_typed_payload_counters_identical(self, tmp_path):
        values = np.array(shuffled(256, seed=5), dtype=np.int64)
        reference_machine = memory_machine()
        stream = FileStream.from_payload(reference_machine, values)
        reference = list(external_merge_sort(reference_machine, stream,
                                             fan_in=2))
        file_backed = file_machine(tmp_path)
        stream = FileStream.from_payload(file_backed, values)
        result = list(external_merge_sort(file_backed, stream, fan_in=2))
        assert result == reference == sorted(values.tolist())
        assert file_backed.stats() == reference_machine.stats()


# ----------------------------------------------------------------------
# real-bytes persistence
# ----------------------------------------------------------------------
class TestPersistence:
    def test_open_recovers_to_last_sync(self, tmp_path):
        path = str(tmp_path / "sync.blocks")
        disk = FileDiskArray(4, path=path)
        synced = disk.allocate()
        disk.write(synced, [1, 2, 3, 4])
        disk.sync_metadata()
        unsynced = disk.allocate()
        disk.write(unsynced, [9, 9, 9, 9])
        disk.close(remove=False)

        recovered = FileDiskArray.open(path)
        # Counters start at zero: the restarted process has done no I/O.
        assert recovered.counter.snapshot().total == 0
        assert recovered.is_allocated(synced)
        assert not recovered.is_allocated(unsynced)
        assert list(recovered.read(synced)) == [1, 2, 3, 4]
        recovered.close(remove=False)

    @requires_numpy
    def test_typed_block_survives_reopen_with_type(self, tmp_path):
        path = str(tmp_path / "typed.blocks")
        disk = FileDiskArray(4, path=path)
        block = disk.allocate()
        payload = np.array([5, -6, 7, -8], dtype=np.int32)
        disk.write(block, payload)
        disk.sync_metadata()
        disk.close(remove=False)

        recovered = FileDiskArray.open(path)
        loaded = recovered.read(block)
        assert isinstance(loaded, np.ndarray)
        assert loaded.dtype == np.int32
        assert loaded.tolist() == [5, -6, 7, -8]
        recovered.close(remove=False)

    def test_torn_prefix_persisted_and_detected_after_reopen(self, tmp_path):
        path = str(tmp_path / "torn.blocks")
        m = file_machine(tmp_path, name="torn.blocks")
        data = list(range(16))
        with m.inject_faults(FaultPlan(torn_writes={0})):
            stream = FileStream.from_records(m, data)
        torn_id = stream.block_ids[0]
        m.disk.sync_metadata()
        m.disk.close(remove=False)

        # The torn image is real bytes in the real file: reattaching
        # sees the stored prefix (B=8, torn_keep=0.5 keeps 4 records)...
        recovered = FileDiskArray.open(path)
        assert list(recovered.peek(torn_id)) == data[:4]
        # ...and the checksum, which recorded the *intended* payload,
        # still convicts it on the first paid read after the restart.
        assert recovered.checksums_enabled
        assert not recovered.verify_checksum(torn_id)
        with pytest.raises(ChecksumError):
            recovered.read(torn_id)
        # The clean sibling block reads back intact.
        assert list(recovered.read(stream.block_ids[1])) == data[8:]
        recovered.close(remove=False)


# ----------------------------------------------------------------------
# crash / restart
# ----------------------------------------------------------------------
class _DurableManifest(SortManifest):
    """A manifest persisted at every commit point, the way a real
    deployment writes it next to the data file: ``committed_json`` is
    the snapshot a restarted process would find on disk."""

    def __init__(self):
        super().__init__()
        self.committed_json = self.to_json()

    def commit_pass(self, streams):
        super().commit_pass(streams)
        self.committed_json = self.to_json()

    def commit_result(self, stream):
        super().commit_result(stream)
        self.committed_json = self.to_json()


class TestCrashRestart:
    def test_crash_restart_resume_byte_identical(self, tmp_path):
        data = shuffled(400, seed=8)
        reference_machine = memory_machine()
        reference = list(external_merge_sort(
            reference_machine, FileStream.from_records(reference_machine,
                                                       data),
            fan_in=2,
        ))

        path = str(tmp_path / "crash.blocks")
        m = file_machine(tmp_path, name="crash.blocks")
        stream = FileStream.from_records(m, data)
        m.disk.sync_metadata()  # the input itself is durable
        input_blocks = list(stream.block_ids)
        manifest = _DurableManifest()
        with pytest.raises(SimulatedCrash):
            with m.inject_faults(FaultPlan(crash_after_writes=120)):
                checkpointed_merge_sort(m, stream, manifest, fan_in=2)
        assert manifest.committed_passes >= 1
        m.disk.close(remove=False)  # process death: the table is gone

        # Restart: reattach the file, rebuild handles from the durable
        # manifest, resume.  Committed passes were synced with their
        # commits, so every block the manifest names is recoverable.
        recovered = FileDiskArray.open(path)
        m2 = Machine(block_size=8, memory_blocks=6, disk=recovered)
        stream2 = FileStream.adopt(m2, input_blocks, len(data), name="input")
        assert list(stream2) == data  # input is byte-identical
        manifest2 = SortManifest.from_json(manifest.committed_json)
        out = checkpointed_merge_sort(m2, stream2, manifest2, fan_in=2)
        assert list(out) == reference
        assert manifest2.done
        assert m2.budget.in_use == 0
        recovered.close(remove=False)

    def test_restart_at_every_crash_point(self, tmp_path):
        data = shuffled(200, seed=9)
        for crash_after in (10, 40, 80, 120):
            name = f"crash{crash_after}.blocks"
            path = str(tmp_path / name)
            m = file_machine(tmp_path, name=name)
            stream = FileStream.from_records(m, data)
            m.disk.sync_metadata()
            input_blocks = list(stream.block_ids)
            manifest = _DurableManifest()
            out = None
            try:
                with m.inject_faults(FaultPlan(crash_after_writes=crash_after)):
                    out = checkpointed_merge_sort(m, stream, manifest,
                                                  fan_in=2)
            except SimulatedCrash:
                m.disk.close(remove=False)
                recovered = FileDiskArray.open(path)
                m = Machine(block_size=8, memory_blocks=6, disk=recovered)
                stream = FileStream.adopt(m, input_blocks, len(data),
                                          name="input")
                manifest = SortManifest.from_json(manifest.committed_json)
                out = checkpointed_merge_sort(m, stream, manifest, fan_in=2)
            assert list(out) == sorted(data)
            m.disk.close(remove=False)

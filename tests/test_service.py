"""Tests for the multi-tenant query service (``repro.service``).

Covers the cooperative entry points' parity with their eager
counterparts, admission control, round-based scheduling, per-tenant
metrics and latency percentiles, trace namespacing, and the acceptance
property that the interleaved schedule beats serial execution on wall
steps for a mixed OLTP/OLAP workload.
"""

import random

import pytest

from repro.core import FileStream, Machine
from repro.core.stats import IOStats
from repro.graph.adjacency import AdjacencyStore
from repro.relational.table import Table
from repro.search.btree import BPlusTree
from repro.search.hashing import ExtendibleHashTable
from repro.service import (
    DONE,
    AdmissionError,
    QueryService,
    bfs_job,
    btree_lookup_job,
    btree_range_job,
    drive,
    hash_lookup_job,
    join_job,
    nearest_rank,
    sort_job,
)
from repro.sort import external_merge_sort


def machine(B=16, m=16, D=4):
    return Machine(block_size=B, memory_blocks=m, num_disks=D)


def records(n, seed=0):
    rng = random.Random(seed)
    return [rng.randrange(10 * n) for _ in range(n)]


@pytest.fixture
def loaded():
    """A machine with a B+-tree, a hash table, and an OLAP stream,
    caches flushed and the stats clock zeroed."""
    m = machine()
    tree = BPlusTree.bulk_load(m, ((i, 2 * i) for i in range(2000)))
    table = ExtendibleHashTable(m)
    for i in range(0, 500, 3):
        table.insert(i, -i)
    stream = FileStream.from_records(m, records(1200, seed=3), name="olap")
    m.pool.flush_all()
    m.runtime.flush()
    m.reset_stats()
    return m, tree, table, stream


class TestCooperativeParity:
    """The generator entry points return what their eager twins return."""

    def test_btree_lookup_steps(self, loaded):
        m, tree, _, _ = loaded
        for key in (0, 777, 1999, 5000):
            assert drive(m, tree.lookup_steps(key)) == tree.get(key)

    def test_btree_range_steps(self, loaded):
        m, tree, _, _ = loaded
        eager = list(tree.range_query(100, 400))
        coop = drive(m, tree.range_steps(100, 400))
        assert coop == eager

    def test_hash_lookup_steps(self, loaded):
        m, _, table, _ = loaded
        for key in (0, 3, 499, 998):
            assert drive(m, table.lookup_steps(key)) == table.get(key)

    def test_sort_steps_matches_eager(self, loaded):
        from repro.sort import merge_sort_steps
        m, _, _, stream = loaded
        out = drive(m, merge_sort_steps(m, stream))
        assert list(out) == sorted(stream)
        assert m.budget.in_use == 0

    def test_bfs_steps_matches_eager(self):
        from repro.graph import bfs_extract_steps, semi_external_bfs
        m = machine()
        rng = random.Random(11)
        edges = [(rng.randrange(60), rng.randrange(60)) for _ in range(150)]
        adjacency = AdjacencyStore.from_edges(m, 60, edges)
        eager = semi_external_bfs(m, adjacency, 0)
        coop = drive(m, bfs_extract_steps(m, adjacency, 0))
        assert coop == eager
        assert m.budget.in_use == 0


def submit_mix(svc, m, tree, stream, lookups=24):
    """Queue the standard OLTP/OLAP mix; returns (lookup_jobs, sort)."""
    rng = random.Random(5)
    oltp_jobs = [
        svc.submit("oltp", btree_lookup_job(tree, rng.randrange(2000)))
        for _ in range(lookups)
    ]
    olap_job = svc.submit("olap", sort_job(m, stream, name="bigsort"))
    return oltp_jobs, olap_job


class TestQueryService:
    def test_mixed_workload_completes_correctly(self, loaded):
        m, tree, _, stream = loaded
        svc = QueryService(m)
        svc.add_tenant("oltp", weight=1, max_running=8)
        svc.add_tenant("olap", weight=2, max_running=2)
        oltp_jobs, olap_job = submit_mix(svc, m, tree, stream)
        report = svc.run()

        assert all(j.status == DONE for j in oltp_jobs)
        for job in oltp_jobs:
            key = job.result // 2 if job.result is not None else None
            assert job.result == tree.get(key)
        assert olap_job.status == DONE
        assert (list(olap_job.result)
                == sorted(stream))
        assert report["tenants"]["oltp"]["completed"] == len(oltp_jobs)
        assert report["tenants"]["olap"]["completed"] == 1
        assert m.budget.in_use == 0

    def test_tenant_peaks_stay_within_shares(self, loaded):
        m, tree, _, stream = loaded
        svc = QueryService(m)
        oltp = svc.add_tenant("oltp", weight=1, max_running=8)
        olap = svc.add_tenant("olap", weight=2, max_running=2)
        submit_mix(svc, m, tree, stream)
        svc.run()
        assert oltp.share.peak <= oltp.share.capacity
        assert olap.share.peak <= olap.share.capacity

    def test_interleaved_beats_serial_on_wall_steps(self, loaded):
        m, tree, _, stream = loaded
        svc = QueryService(m)
        svc.add_tenant("oltp", weight=1, max_running=8)
        svc.add_tenant("olap", weight=2, max_running=2)
        submit_mix(svc, m, tree, stream)
        interleaved = svc.run()

        m2 = machine()
        tree2 = BPlusTree.bulk_load(m2, ((i, 2 * i) for i in range(2000)))
        stream2 = FileStream.from_records(
            m2, records(1200, seed=3), name="olap"
        )
        m2.pool.flush_all()
        m2.runtime.flush()
        m2.reset_stats()
        serial = QueryService(m2, max_running=1)
        serial.add_tenant("oltp", weight=1, max_running=8)
        serial.add_tenant("olap", weight=2, max_running=2)
        submit_mix(serial, m2, tree2, stream2)
        serial_report = serial.run()

        assert (interleaved["total_wall_steps"]
                < serial_report["total_wall_steps"])

    def test_per_tenant_io_attribution_sums_to_total(self, loaded):
        m, tree, _, stream = loaded
        svc = QueryService(m)
        svc.add_tenant("oltp", weight=1, max_running=8)
        svc.add_tenant("olap", weight=2, max_running=2)
        submit_mix(svc, m, tree, stream)
        report = svc.run()
        # Tenant ledgers cover everything except the final cross-tenant
        # flush the service itself pays for.
        per_tenant = sum(
            t["io_steps"] for t in report["tenants"].values()
        )
        assert per_tenant <= report["total_io_steps"]
        assert per_tenant > 0

    def test_all_job_kinds_run_together(self):
        m = machine()
        tree = BPlusTree.bulk_load(m, ((i, i) for i in range(800)))
        table = ExtendibleHashTable(m)
        for i in range(200):
            table.insert(i, i * 3)
        rng = random.Random(9)
        edges = [(rng.randrange(40), rng.randrange(40)) for _ in range(90)]
        adjacency = AdjacencyStore.from_edges(m, 40, edges)
        left = Table.from_rows(
            m, ["k", "a"],
            [[rng.randrange(50), i] for i in range(220)], name="L",
        )
        right = Table.from_rows(
            m, ["k", "b"],
            [[rng.randrange(50), -i] for i in range(180)], name="R",
        )
        stream = FileStream.from_records(m, records(400, seed=1), name="s")
        m.pool.flush_all()
        m.runtime.flush()
        m.reset_stats()

        svc = QueryService(m)
        svc.add_tenant("point", weight=1, max_running=4)
        svc.add_tenant("scan", weight=3, max_running=3)
        jobs = [
            svc.submit("point", btree_lookup_job(tree, 123)),
            svc.submit("point", btree_range_job(tree, 50, 90)),
            svc.submit("point", hash_lookup_job(table, 77)),
            svc.submit("scan", sort_job(m, stream)),
            svc.submit("scan", join_job(left, right, "k", "k")),
            svc.submit("scan", bfs_job(m, adjacency, 0)),
        ]
        svc.run()
        assert all(j.status == DONE for j in jobs), [
            (j.name, j.error) for j in jobs
        ]
        assert jobs[0].result == 123
        assert jobs[1].result == [(k, k) for k in range(50, 91)]
        assert jobs[2].result == 231
        assert (list(jobs[3].result)
                == sorted(stream))
        from repro.relational import sort_merge_join
        expected = sort_merge_join(left, right, "k", "k")
        assert (sorted(map(tuple, jobs[4].result.rows()))
                == sorted(map(tuple, expected.rows())))
        from repro.graph import semi_external_bfs
        assert jobs[5].result == semi_external_bfs(m, adjacency, 0)
        assert m.budget.in_use == 0


class TestAdmission:
    def test_infeasible_reservation_rejected(self, loaded):
        m, tree, _, stream = loaded
        svc = QueryService(m)
        tenant = svc.add_tenant("tiny", weight=1, max_running=2)
        job = sort_job(m, stream)
        job.reservation = tenant.share.capacity + 1
        with pytest.raises(AdmissionError):
            svc.submit("tiny", job)
        assert tenant.metrics.rejected == 1

    def test_bounded_queue_rejects_overflow(self, loaded):
        m, tree, _, _ = loaded
        svc = QueryService(m, max_queued=3)
        tenant = svc.add_tenant("t", weight=1, max_running=1)
        for i in range(3):
            svc.submit("t", btree_lookup_job(tree, i))
        with pytest.raises(AdmissionError):
            svc.submit("t", btree_lookup_job(tree, 99))
        assert tenant.metrics.rejected == 1
        assert tenant.metrics.submitted == 3

    def test_per_tenant_concurrency_cap(self, loaded):
        m, tree, _, _ = loaded
        svc = QueryService(m)
        tenant = svc.add_tenant("t", weight=1, max_running=2)
        for i in range(5):
            svc.submit("t", btree_lookup_job(tree, i))
        started = svc.admission.admit()
        assert len(started) == 2
        assert len(tenant.running) == 2
        assert svc.admission.pending == 3

    def test_service_wide_slots_cap(self, loaded):
        m, tree, _, _ = loaded
        svc = QueryService(m, max_running=1)
        svc.add_tenant("a", weight=1, max_running=4)
        svc.add_tenant("b", weight=1, max_running=4)
        for i in range(3):
            svc.submit("a", btree_lookup_job(tree, i))
            svc.submit("b", btree_lookup_job(tree, 100 + i))
        started = svc.admission.admit(1)
        assert len(started) == 1

    def test_unknown_tenant_raises(self, loaded):
        m, tree, _, _ = loaded
        svc = QueryService(m)
        from repro.core import ConfigurationError
        with pytest.raises(ConfigurationError):
            svc.submit("ghost", btree_lookup_job(tree, 1))

    def test_job_names_deduplicated_per_tenant(self, loaded):
        m, tree, _, _ = loaded
        svc = QueryService(m)
        svc.add_tenant("t", weight=1, max_running=8)
        names = [
            svc.submit("t", btree_lookup_job(tree, i)).name
            for i in range(3)
        ]
        assert names == ["btree-get", "btree-get#1", "btree-get#2"]
        assert len(set(names)) == 3


class TestMetrics:
    def test_nearest_rank_edge_cases(self):
        assert nearest_rank([], 50) is None
        assert nearest_rank([7], 50) == 7
        assert nearest_rank([7], 99) == 7
        values = list(range(1, 101))
        assert nearest_rank(values, 50) == 50
        assert nearest_rank(values, 99) == 99
        assert nearest_rank(values, 100) == 100

    def test_latencies_recorded_per_completion(self, loaded):
        m, tree, _, stream = loaded
        svc = QueryService(m)
        oltp = svc.add_tenant("oltp", weight=1, max_running=8)
        olap = svc.add_tenant("olap", weight=2, max_running=2)
        oltp_jobs, olap_job = submit_mix(svc, m, tree, stream, lookups=10)
        report = svc.run()
        assert len(oltp.metrics.latency_io) == 10
        assert len(olap.metrics.latency_wall) == 1
        for job in oltp_jobs + [olap_job]:
            assert job.latency_io is not None
            assert job.latency_wall >= job.latency_io
        snap = report["tenants"]["oltp"]
        for key in ("p50_io", "p99_io", "p50_wall", "p99_wall"):
            assert snap[key] is not None
        assert snap["p99_io"] >= snap["p50_io"]

    def test_snapshot_shape(self):
        from repro.service import TenantMetrics
        metrics = TenantMetrics()
        snap = metrics.snapshot()
        assert snap["submitted"] == 0
        assert snap["p99_wall"] is None
        metrics.charge(IOStats(reads=3, read_steps=2))
        metrics.record_latency(4, 6)
        snap = metrics.snapshot()
        assert snap["reads"] == 3
        assert snap["io_steps"] == 2
        assert snap["p50_io"] == 4
        assert snap["p50_wall"] == 6


class TestTraceNamespacing:
    def test_phases_namespaced_and_never_double_counted(self, loaded):
        m, tree, _, stream = loaded
        tracer = m.runtime.start_trace()
        svc = QueryService(m)
        svc.add_tenant("oltp", weight=1, max_running=8)
        svc.add_tenant("olap", weight=2, max_running=2)
        submit_mix(svc, m, tree, stream, lookups=8)
        svc.run()
        tracer.stop()

        labels = set(tracer.phase_summary()) | set(tracer.pool_summary())
        # Generator-body I/O (and any wave serving exactly one job) is
        # attributed to the job phase; shared multi-job waves land on
        # the tenant phase — they cannot be split per job.
        assert "svc/oltp" in labels
        assert any(label.startswith("svc/olap/bigsort")
                   for label in labels)
        # Each transfer lands under exactly one leaf label, so any
        # roll-up depth preserves the totals.
        flat = sum(tracer.phase_summary().values(), IOStats())
        for depth in (1, 2, 3):
            rolled = sum(tracer.namespace_summary(depth).values(),
                         IOStats())
            assert rolled == flat
        by_tenant = tracer.namespace_summary(2)
        assert "svc/oltp" in by_tenant and "svc/olap" in by_tenant

    def test_namespace_table_and_lanes(self, loaded):
        m, tree, _, stream = loaded
        tracer = m.runtime.start_trace()
        svc = QueryService(m)
        svc.add_tenant("oltp", weight=1, max_running=8)
        svc.add_tenant("olap", weight=2, max_running=2)
        submit_mix(svc, m, tree, stream, lookups=8)
        svc.run()
        tracer.stop()

        table = tracer.namespace_table(2)
        assert "svc/oltp" in table and "svc/olap" in table
        chrome = tracer.to_chrome(namespace_lanes=2)
        lanes = {
            e["args"]["name"]
            for e in chrome["traceEvents"] if e.get("ph") == "M"
        }
        assert {"svc/oltp", "svc/olap"} <= lanes

    def test_default_chrome_export_unchanged(self, loaded):
        m, tree, _, stream = loaded
        tracer = m.runtime.start_trace()
        with m.trace("solo"):
            external_merge_sort(m, stream)
        tracer.stop()
        assert tracer.to_chrome() == tracer.to_chrome(namespace_lanes=0)
        lanes = {
            e["args"]["name"]
            for e in tracer.to_chrome()["traceEvents"]
            if e.get("ph") == "M"
        }
        assert lanes == (
            {f"disk {d}" for d in range(m.num_disks)} | {"phases"}
        )

    def test_lone_job_wave_attributed_to_job_phase(self, loaded):
        m, tree, _, _ = loaded
        tracer = m.runtime.start_trace()
        svc = QueryService(m)
        svc.add_tenant("solo", weight=1, max_running=1)
        svc.submit("solo", btree_lookup_job(tree, 1234))
        svc.run()
        tracer.stop()
        labels = set(tracer.phase_summary()) | set(tracer.pool_summary())
        assert "svc/solo/btree-get" in labels

    def test_namespace_depth_validated(self, loaded):
        m, _, _, _ = loaded
        from repro.core import ConfigurationError
        tracer = m.runtime.start_trace()
        tracer.stop()
        with pytest.raises(ConfigurationError):
            tracer.namespace_summary(0)

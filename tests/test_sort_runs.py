"""Tests for run formation strategies."""

import pytest

from repro.core import ConfigurationError, FileStream, Machine, scan_io
from repro.sort import (
    average_run_length,
    form_runs_load_sort,
    form_runs_replacement_selection,
    is_sorted_stream,
)
from repro.workloads import reversed_ints, sorted_ints, uniform_ints


def machine():
    return Machine(block_size=16, memory_blocks=8)  # B=16, M=128


class TestLoadSortRuns:
    def test_runs_are_sorted(self):
        m = machine()
        s = FileStream.from_records(m, uniform_ints(1000, seed=3))
        runs = form_runs_load_sort(m, s)
        assert all(is_sorted_stream(r) for r in runs)

    def test_runs_cover_all_records(self):
        m = machine()
        data = uniform_ints(1000, seed=3)
        runs = form_runs_load_sort(m, FileStream.from_records(m, data))
        merged = sorted(x for r in runs for x in r)
        assert merged == sorted(data)

    def test_run_count_is_ceil_n_over_m(self):
        m = machine()
        s = FileStream.from_records(m, uniform_ints(1000, seed=3))
        runs = form_runs_load_sort(m, s)
        assert len(runs) == 8  # ceil(1000/128)

    def test_full_runs_have_m_records(self):
        m = machine()
        runs = form_runs_load_sort(
            m, FileStream.from_records(m, uniform_ints(300, seed=0))
        )
        assert [len(r) for r in runs] == [128, 128, 44]

    def test_io_cost_is_one_read_one_write_pass(self):
        m = machine()
        s = FileStream.from_records(m, uniform_ints(1000, seed=3))
        with m.measure() as io:
            form_runs_load_sort(m, s)
        blocks = scan_io(1000, 16)
        assert io.reads == blocks
        assert io.writes == blocks

    def test_empty_input(self):
        m = machine()
        runs = form_runs_load_sort(m, FileStream(m).finalize())
        assert runs == []

    def test_key_function_respected(self):
        m = machine()
        data = [(i, -i) for i in range(200)]
        runs = form_runs_load_sort(
            m, FileStream.from_records(m, data), key=lambda r: r[1]
        )
        assert all(is_sorted_stream(r, key=lambda r: r[1]) for r in runs)


class TestReplacementSelection:
    def test_runs_are_sorted(self):
        m = machine()
        s = FileStream.from_records(m, uniform_ints(1000, seed=5))
        runs = form_runs_replacement_selection(m, s)
        assert all(is_sorted_stream(r) for r in runs)

    def test_runs_cover_all_records(self):
        m = machine()
        data = uniform_ints(1000, seed=5)
        runs = form_runs_replacement_selection(
            m, FileStream.from_records(m, data)
        )
        assert sorted(x for r in runs for x in r) == sorted(data)

    def test_average_run_length_near_2m_on_random_input(self):
        m = machine()
        heap = m.M - 2 * m.B  # 96
        s = FileStream.from_records(m, uniform_ints(6000, seed=5))
        runs = form_runs_replacement_selection(m, s)
        avg = average_run_length(runs)
        assert 1.6 * heap <= avg <= 2.6 * heap

    def test_sorted_input_yields_single_run(self):
        m = machine()
        runs = form_runs_replacement_selection(
            m, FileStream.from_records(m, sorted_ints(2000))
        )
        assert len(runs) == 1
        assert len(runs[0]) == 2000

    def test_reversed_input_degrades_to_heap_size_runs(self):
        m = machine()
        heap = m.M - 2 * m.B
        runs = form_runs_replacement_selection(
            m, FileStream.from_records(m, reversed_ints(2000))
        )
        full_runs = runs[:-1]
        assert all(len(r) == heap for r in full_runs)

    def test_fewer_runs_than_load_sort_on_random_input(self):
        data = uniform_ints(4000, seed=9)
        m1 = machine()
        load = form_runs_load_sort(m1, FileStream.from_records(m1, data))
        m2 = machine()
        repl = form_runs_replacement_selection(
            m2, FileStream.from_records(m2, data)
        )
        assert len(repl) < len(load)

    def test_input_smaller_than_heap(self):
        m = machine()
        runs = form_runs_replacement_selection(
            m, FileStream.from_records(m, [3, 1, 2])
        )
        assert len(runs) == 1
        assert list(runs[0]) == [1, 2, 3]

    def test_empty_input(self):
        m = machine()
        runs = form_runs_replacement_selection(m, FileStream(m).finalize())
        assert runs == []

    def test_requires_three_memory_blocks(self):
        m = Machine(block_size=16, memory_blocks=2)
        with pytest.raises(ConfigurationError):
            form_runs_replacement_selection(m, FileStream(m).finalize())

    def test_reader_frame_released_while_fault_propagates(self):
        """Regression (EM301): the input reader was opened with a bare
        ``iter(stream)``, so a fault in the key function left its pinned
        frame held for as long as the propagating exception's traceback
        kept the generator frame alive.  The reader is now wrapped in
        ``closing()``, which releases the frame on the way out — the
        budget must already be balanced *inside* the handler, while the
        traceback (and with it the generator) is still referenced."""
        m = machine()
        s = FileStream.from_records(m, uniform_ints(500, seed=7))

        calls = {"n": 0}

        def fragile_key(record):
            calls["n"] += 1
            if calls["n"] > 120:
                raise RuntimeError("keyer died mid-pass")
            return record

        try:
            form_runs_replacement_selection(m, s, key=fragile_key)
        except RuntimeError:
            assert m.budget.in_use == 0
            # The fault handler also deleted every half-formed run.
            assert m.disk.allocated_blocks == s.num_blocks
        else:
            pytest.fail("fragile key never raised")

    def test_duplicate_keys_handled(self):
        m = machine()
        data = [7] * 500 + [3] * 500
        runs = form_runs_replacement_selection(
            m, FileStream.from_records(m, data)
        )
        assert sorted(x for r in runs for x in r) == sorted(data)
        assert all(is_sorted_stream(r) for r in runs)

"""Tests for the extended relational operators: distinct, top-k, hash
aggregation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ConfigurationError, EMError, Machine, scan_io
from repro.relational import Table, distinct, group_by, hash_group_by, top_k
from repro.workloads import duplicate_heavy_ints, uniform_ints


def machine(B=16, m=8):
    return Machine(block_size=B, memory_blocks=m)


class TestDistinct:
    def test_removes_duplicates(self):
        m = machine()
        rows = [(k,) for k in duplicate_heavy_ints(500, distinct=20, seed=1)]
        d = distinct(Table.from_rows(m, ("k",), rows))
        assert sorted(d.rows()) == sorted(set(rows))

    def test_no_duplicates_unchanged(self):
        m = machine()
        rows = [(k,) for k in range(100)]
        d = distinct(Table.from_rows(m, ("k",), rows))
        assert len(d) == 100

    def test_multi_column_rows(self):
        m = machine()
        rows = [(1, "a"), (1, "b"), (1, "a"), (2, "a")]
        d = distinct(Table.from_rows(m, ("k", "v"), rows))
        assert sorted(d.rows()) == [(1, "a"), (1, "b"), (2, "a")]

    def test_empty_table(self):
        m = machine()
        assert len(distinct(Table.from_rows(m, ("k",), []))) == 0


class TestTopK:
    def test_descending_top_k(self):
        m = machine()
        t = Table.from_rows(m, ("v",), [(x,) for x in uniform_ints(500, seed=2)])
        result = [r[0] for r in top_k(t, "v", 10).rows()]
        assert result == sorted(
            (x for (x,) in t.rows()), reverse=True
        )[:10]

    def test_ascending_top_k(self):
        m = machine()
        data = uniform_ints(500, seed=3)
        t = Table.from_rows(m, ("v",), [(x,) for x in data])
        result = [r[0] for r in top_k(t, "v", 7, descending=False).rows()]
        assert result == sorted(data)[:7]

    def test_k_larger_than_table(self):
        m = machine()
        t = Table.from_rows(m, ("v",), [(3,), (1,), (2,)])
        assert [r[0] for r in top_k(t, "v", 10).rows()] == [3, 2, 1]

    def test_k_zero(self):
        m = machine()
        t = Table.from_rows(m, ("v",), [(1,)])
        assert len(top_k(t, "v", 0)) == 0

    def test_negative_k_rejected(self):
        m = machine()
        t = Table.from_rows(m, ("v",), [(1,)])
        with pytest.raises(ConfigurationError):
            top_k(t, "v", -1)

    def test_single_scan_io(self):
        m = machine()
        t = Table.from_rows(
            m, ("v",), [(x,) for x in uniform_ints(800, seed=4)]
        )
        with m.measure() as io:
            top_k(t, "v", 5)
        assert io.reads == scan_io(800, m.B)

    def test_ties_resolved_deterministically(self):
        m = machine()
        t = Table.from_rows(m, ("v", "i"), [(5, i) for i in range(20)])
        result = list(top_k(t, "v", 3).rows())
        assert len(result) == 3
        assert all(r[0] == 5 for r in result)

    @given(st.lists(st.integers(-1000, 1000), max_size=200),
           st.integers(0, 20))
    @settings(max_examples=30, deadline=None)
    def test_property_matches_sorted_slice(self, data, k):
        m = machine(B=8)
        t = Table.from_rows(m, ("v",), [(x,) for x in data])
        result = [r[0] for r in top_k(t, "v", k).rows()]
        assert result == sorted(data, reverse=True)[:k]


class TestHashGroupBy:
    def test_matches_sort_based_group_by(self):
        m1, m2 = machine(), machine()
        rows = [(k % 9, k) for k in uniform_ints(600, seed=5)]
        t1 = Table.from_rows(m1, ("k", "v"), rows)
        t2 = Table.from_rows(m2, ("k", "v"), rows)
        hashed = hash_group_by(t1, "k", [("sum", "v"), ("count", "v"),
                                         ("min", "v"), ("max", "v")])
        sorted_ = group_by(t2, "k", [("sum", "v"), ("count", "v"),
                                     ("min", "v"), ("max", "v")])
        assert sorted(hashed.rows()) == sorted(sorted_.rows())
        assert hashed.columns == sorted_.columns

    def test_empty_table(self):
        m = machine()
        t = Table.from_rows(m, ("k", "v"), [])
        assert len(hash_group_by(t, "k", [("count", "v")])) == 0

    def test_unknown_aggregate_rejected(self):
        m = machine()
        t = Table.from_rows(m, ("k", "v"), [(1, 2)])
        with pytest.raises(ConfigurationError):
            hash_group_by(t, "k", [("mode", "v")])

    def test_too_many_groups_overflow_detected(self):
        m = machine(B=8, m=4)  # state capacity = 16 groups/partition
        rows = [(k, k) for k in range(600)]  # 600 distinct groups
        t = Table.from_rows(m, ("k", "v"), rows)
        with pytest.raises(EMError):
            hash_group_by(t, "k", [("count", "v")])

    def test_cheaper_than_sort_group_by_for_few_groups(self):
        rows = [(k % 4, k) for k in uniform_ints(3_000, seed=6)]
        m1 = machine()
        t1 = Table.from_rows(m1, ("k", "v"), rows)
        with m1.measure() as io_hash:
            hash_group_by(t1, "k", [("sum", "v")])
        m2 = machine()
        t2 = Table.from_rows(m2, ("k", "v"), rows)
        with m2.measure() as io_sort:
            group_by(t2, "k", [("sum", "v")])
        assert io_hash.total < io_sort.total

    @given(st.lists(st.tuples(st.integers(0, 6), st.integers(0, 100)),
                    max_size=200))
    @settings(max_examples=25, deadline=None)
    def test_property_matches_python_groupby(self, rows):
        m = machine(B=8)
        t = Table.from_rows(m, ("k", "v"), rows)
        result = {r[0]: r[1] for r in
                  hash_group_by(t, "k", [("sum", "v")]).rows()}
        expected = {}
        for k, v in rows:
            expected[k] = expected.get(k, 0) + v
        assert result == expected

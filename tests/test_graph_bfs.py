"""Tests for adjacency storage and external BFS."""

import collections

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ConfigurationError, Machine
from repro.graph import AdjacencyStore, mr_bfs, naive_bfs
from repro.workloads import connected_random_graph, grid_graph, random_graph


def machine(B=16, m=8):
    return Machine(block_size=B, memory_blocks=m)


def reference_bfs(n, edges, source):
    g = collections.defaultdict(list)
    for u, v in edges:
        g[u].append(v)
        g[v].append(u)
    dist = {source: 0}
    queue = collections.deque([source])
    while queue:
        x = queue.popleft()
        for y in g[x]:
            if y not in dist:
                dist[y] = dist[x] + 1
                queue.append(y)
    return dist


class TestAdjacencyStore:
    def test_neighbors_sorted_and_complete(self):
        m = machine()
        edges = [(0, 1), (0, 2), (1, 2), (3, 0)]
        adj = AdjacencyStore.from_edges(m, 4, edges)
        assert adj.neighbors(0) == [1, 2, 3]
        assert adj.neighbors(1) == [0, 2]
        assert adj.neighbors(3) == [0]

    def test_degree(self):
        m = machine()
        adj = AdjacencyStore.from_edges(m, 4, [(0, 1), (0, 2), (0, 3)])
        assert adj.degree(0) == 3
        assert adj.degree(2) == 1

    def test_isolated_vertex(self):
        m = machine()
        adj = AdjacencyStore.from_edges(m, 3, [(0, 1)])
        assert adj.neighbors(2) == []
        assert adj.degree(2) == 0

    def test_self_loops_dropped(self):
        m = machine()
        adj = AdjacencyStore.from_edges(m, 2, [(0, 0), (0, 1)])
        assert adj.neighbors(0) == [1]

    def test_duplicate_edges_collapsed(self):
        m = machine()
        adj = AdjacencyStore.from_edges(m, 2, [(0, 1), (0, 1), (1, 0)])
        assert adj.neighbors(0) == [1]
        assert adj.neighbors(1) == [0]

    def test_out_of_range_edge_rejected(self):
        m = machine()
        with pytest.raises(ConfigurationError):
            AdjacencyStore.from_edges(m, 2, [(0, 5)])

    def test_out_of_range_query_rejected(self):
        m = machine()
        adj = AdjacencyStore.from_edges(m, 2, [(0, 1)])
        with pytest.raises(ConfigurationError):
            adj.neighbors(7)

    def test_num_edges(self):
        m = machine()
        n, edges = grid_graph(5, 5)
        adj = AdjacencyStore.from_edges(m, n, edges)
        assert adj.num_edges == len(edges)

    def test_high_degree_vertex_spans_blocks(self):
        m = machine(B=8)
        star = [(0, i) for i in range(1, 50)]
        adj = AdjacencyStore.from_edges(m, 50, star)
        assert adj.neighbors(0) == list(range(1, 50))


class TestBFSCorrectness:
    @pytest.mark.parametrize("bfs", [naive_bfs, mr_bfs])
    def test_matches_reference_on_random_graph(self, bfs):
        m = machine()
        n, edges = connected_random_graph(300, seed=5)
        adj = AdjacencyStore.from_edges(m, n, edges)
        assert bfs(m, adj, 0) == reference_bfs(n, edges, 0)

    @pytest.mark.parametrize("bfs", [naive_bfs, mr_bfs])
    def test_matches_reference_on_grid(self, bfs):
        m = machine()
        n, edges = grid_graph(12, 17)
        adj = AdjacencyStore.from_edges(m, n, edges)
        assert bfs(m, adj, 0) == reference_bfs(n, edges, 0)

    @pytest.mark.parametrize("bfs", [naive_bfs, mr_bfs])
    def test_disconnected_graph_reaches_only_component(self, bfs):
        m = machine()
        edges = [(0, 1), (2, 3)]
        adj = AdjacencyStore.from_edges(m, 4, edges)
        assert bfs(m, adj, 0) == {0: 0, 1: 1}

    @pytest.mark.parametrize("bfs", [naive_bfs, mr_bfs])
    def test_single_vertex(self, bfs):
        m = machine()
        adj = AdjacencyStore.from_edges(m, 1, [])
        assert bfs(m, adj, 0) == {0: 0}

    @pytest.mark.parametrize("bfs", [naive_bfs, mr_bfs])
    def test_path_graph_distances(self, bfs):
        m = machine()
        edges = [(i, i + 1) for i in range(49)]
        adj = AdjacencyStore.from_edges(m, 50, edges)
        result = bfs(m, adj, 0)
        assert result == {i: i for i in range(50)}

    @pytest.mark.parametrize("bfs", [naive_bfs, mr_bfs])
    def test_bad_source_rejected(self, bfs):
        m = machine()
        adj = AdjacencyStore.from_edges(m, 2, [(0, 1)])
        with pytest.raises(ConfigurationError):
            bfs(m, adj, 9)

    @given(st.integers(2, 120), st.integers(0, 10**6))
    @settings(max_examples=25, deadline=None)
    def test_property_agreement(self, n, seed):
        m = machine(B=8, m=6)
        n, edges = connected_random_graph(n, avg_degree=3, seed=seed)
        adj = AdjacencyStore.from_edges(m, n, edges)
        assert mr_bfs(m, adj, 0) == naive_bfs(m, adj, 0)


class TestBFSIOBehaviour:
    def test_mr_bfs_leaves_no_temporary_streams(self):
        m = machine()
        n, edges = connected_random_graph(200, seed=6)
        adj = AdjacencyStore.from_edges(m, n, edges)
        before = m.disk.allocated_blocks
        mr_bfs(m, adj, 0)
        assert m.disk.allocated_blocks == before
        assert m.budget.in_use == 0

    def test_mr_bfs_beats_naive_on_random_graph_with_tiny_pool(self):
        """On a random graph naive BFS misses the pool on nearly every
        vertex; MR-BFS amortizes through sorting."""
        n, edges = connected_random_graph(3000, avg_degree=8, seed=7)
        m1 = Machine(block_size=64, memory_blocks=4)
        adj1 = AdjacencyStore.from_edges(m1, n, edges)
        m1.reset_stats()
        naive_bfs(m1, adj1, 0)
        naive_io = m1.stats().total
        m2 = Machine(block_size=64, memory_blocks=4)
        adj2 = AdjacencyStore.from_edges(m2, n, edges)
        m2.reset_stats()
        mr_bfs(m2, adj2, 0)
        mr_io = m2.stats().total
        assert mr_io < naive_io

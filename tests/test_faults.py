"""Tests for the fault-injection and recovery layer (``repro.faults``).

Covers the injector's determinism, the scheduler's retry policy, torn
writes surfacing as checksum errors, stuck-slow disk stalls, and the
pass-granular checkpoint/restart of external merge sort.
"""

import random

import pytest

from repro.core import Machine
from repro.core.blockfile import BlockFile
from repro.core.filedisk import FileDiskArray
from repro.core.exceptions import (
    ChecksumError,
    ConfigurationError,
    RetryExhaustedError,
    SimulatedCrash,
    TransientReadError,
)
from repro.core.stream import FileStream, StripedStream
from repro.faults import (
    FaultInjector,
    FaultPlan,
    RetryPolicy,
    SortManifest,
    checkpointed_merge_sort,
)
from repro.sort.merge import external_merge_sort


def machine(B=8, m=6, D=1):
    return Machine(block_size=B, memory_blocks=m, num_disks=D)


def shuffled(n, seed=0):
    rng = random.Random(seed)
    return [rng.randrange(10 * n) for _ in range(n)]


class TestFaultPlan:
    def test_rates_validated(self):
        with pytest.raises(ConfigurationError):
            FaultPlan(read_error_rate=1.5)
        with pytest.raises(ConfigurationError):
            FaultPlan(torn_keep=1.0)

    def test_same_seed_same_faults(self):
        plan = FaultPlan(seed=13, read_error_rate=0.1)
        outcomes = []
        for _ in range(2):
            injector = FaultInjector(plan)
            outcomes.append([
                injector.read_fault(block, 0) is not None
                for block in range(200)
            ])
        assert outcomes[0] == outcomes[1]
        assert any(outcomes[0])

    def test_injector_counts_what_it_injects(self):
        m = machine()
        with m.inject_faults(FaultPlan(seed=3, read_error_rate=0.2)) as inj:
            stream = FileStream.from_records(m, shuffled(200))
            list(stream)
        assert inj.injected["read-error"] > 0
        assert m.stats().faults == inj.injected["read-error"]


class TestRetryPolicy:
    def test_transient_faults_are_retried_transparently(self):
        m = machine()
        data = shuffled(300, seed=1)
        with m.inject_faults(FaultPlan(seed=5, read_error_rate=0.1,
                                       write_error_rate=0.05)):
            stream = FileStream.from_records(m, data)
            out = external_merge_sort(m, stream, fan_in=2)
            assert list(out) == sorted(data)
        stats = m.stats()
        assert stats.faults > 0
        assert stats.retries == stats.faults
        # Backoff is charged as stall steps, visible in wall_steps but
        # kept out of total_steps so transfer accounting is unchanged.
        assert stats.stall_steps > 0
        assert stats.wall_steps == stats.total_steps + stats.stall_steps

    def test_retry_exhaustion_raises(self):
        m = machine()
        stream = FileStream.from_records(m, shuffled(50))
        bad_block = stream.block_ids[0]
        # None = the block fails on every read attempt: unrecoverable.
        with m.inject_faults(FaultPlan(fail_block_reads={bad_block: None})):
            with pytest.raises(RetryExhaustedError) as exc_info:
                list(stream)
        error = exc_info.value
        assert error.attempts == RetryPolicy().max_attempts
        assert isinstance(error.last_error, TransientReadError)
        assert m.stats().retries == RetryPolicy().max_attempts - 1

    def test_bounded_transient_burst_recovers(self):
        m = machine()
        stream = FileStream.from_records(m, shuffled(50))
        bad_block = stream.block_ids[0]
        with m.inject_faults(FaultPlan(fail_block_reads={bad_block: 2})):
            assert sorted(list(stream)) == sorted(shuffled(50))
        assert m.stats().retries == 2

    def test_backoff_is_exponential(self):
        policy = RetryPolicy(max_attempts=4, backoff_base=1)
        assert [policy.backoff_steps(k) for k in (1, 2, 3)] == [1, 2, 4]


class TestChecksums:
    def test_torn_write_detected_at_read(self):
        m = machine()
        # torn_writes indexes *performed* writes; index 2 tears the
        # third block written after the plan is installed.
        with m.inject_faults(FaultPlan(torn_writes={2})):
            stream = FileStream.from_records(m, shuffled(100))
            with pytest.raises(ChecksumError):
                list(stream)

    def test_checksum_error_is_not_retried(self):
        m = machine()
        with m.inject_faults(FaultPlan(torn_writes={0})):
            stream = FileStream.from_records(m, shuffled(20))
            with pytest.raises(ChecksumError):
                list(stream)
        assert m.stats().retries == 0

    def test_checksums_stay_enabled_after_plan_exits(self):
        m = machine()
        with m.inject_faults(FaultPlan(torn_writes={0})):
            stream = FileStream.from_records(m, shuffled(20))
        assert m.disk.fault_injector is None
        assert m.disk.checksums_enabled
        with pytest.raises(ChecksumError):
            list(stream)

    def test_fault_free_runs_have_no_checksum_state(self):
        m = machine()
        FileStream.from_records(m, shuffled(20))
        assert not m.disk.checksums_enabled

    def test_blockfile_verify_reports_torn_blocks(self):
        m = machine()
        with m.inject_faults(FaultPlan(torn_writes={1})):
            with BlockFile.from_records(m, shuffled(40), name="t") as bf:
                assert bf.verify() == [1]
                # Repair by rewriting, as the verify() contract says.
                bf.write_block(1, list(range(m.B)))
                assert bf.verify() == []
                bf.delete()


class TestStalls:
    def test_slow_disk_charges_stall_steps(self):
        m = machine(D=2)
        with m.inject_faults(FaultPlan(slow_disks={0: 3})):
            stream = StripedStream.from_records(m, shuffled(64))
            list(stream)
        stats = m.stats()
        assert stats.stall_steps > 0
        assert stats.stall_steps % 3 == 0
        assert stats.wall_steps > stats.total_steps


class TestTracer:
    def test_fault_retry_stall_lanes(self):
        m = machine()
        tracer = m.runtime.start_trace()
        with m.inject_faults(FaultPlan(seed=5, read_error_rate=0.15)):
            with m.trace("faulty-scan"):
                stream = FileStream.from_records(m, shuffled(200))
                list(stream)
        tracer.stop()
        stats = tracer.phase_summary()["faulty-scan"]
        assert stats.faults > 0
        assert stats.retries == stats.faults
        assert stats.stall_steps > 0
        names = {event["name"] for event in tracer.to_chrome()["traceEvents"]}
        assert "fault:read-error" in names
        assert "retry:read" in names
        assert "stall:backoff" in names
        table = tracer.summary_table()
        assert "faults" in table and "retries" in table

    def test_fault_free_summary_has_no_fault_columns(self):
        m = machine()
        tracer = m.runtime.start_trace()
        with m.trace("clean-scan"):
            list(FileStream.from_records(m, shuffled(100)))
        tracer.stop()
        assert "faults" not in tracer.summary_table()


class TestCheckpointedSort:
    def _reference(self, data):
        m = machine()
        return list(
            external_merge_sort(m, FileStream.from_records(m, data),
                                fan_in=2)
        )

    def test_matches_plain_sort_without_faults(self):
        data = shuffled(400, seed=7)
        m = machine()
        stream = FileStream.from_records(m, data)
        manifest = SortManifest()
        out = checkpointed_merge_sort(m, stream, manifest, fan_in=2)
        assert list(out) == sorted(data)
        assert manifest.done
        # The input survives (unlike keep_input=False paths) and no
        # intermediate blocks leak.
        assert m.disk.allocated_blocks == stream.num_blocks + out.num_blocks

    def test_crash_resume_identical_output_no_repeated_passes(self):
        data = shuffled(400, seed=8)
        reference = self._reference(data)
        m = machine()
        stream = FileStream.from_records(m, data)
        manifest = SortManifest()
        tracer = m.runtime.start_trace()
        with pytest.raises(SimulatedCrash):
            with m.inject_faults(FaultPlan(crash_after_writes=120)):
                checkpointed_merge_sort(m, stream, manifest, fan_in=2)
        crashed_at = manifest.committed_passes
        assert crashed_at >= 1  # at least run formation committed

        # Resume from a JSON round-trip of the manifest, tracing which
        # passes actually run again.
        manifest = SortManifest.from_json(manifest.to_json())
        out = checkpointed_merge_sort(m, stream, manifest, fan_in=2)
        tracer.stop()
        assert list(out) == reference
        assert manifest.done

        labels = [label for label, _, _ in tracer._spans]
        # Passes committed before the crash ran exactly once across
        # crash + resume — resume must not repeat their I/O.  (The pass
        # that was *in flight* at the crash legitimately appears twice:
        # once aborted, once re-run.)
        assert labels.count("run-formation") == 1
        for level in range(1, crashed_at):
            assert labels.count(f"merge-pass-{level}") == 1
        assert labels.count(f"merge-pass-{crashed_at}") == 2
        # No leaked blocks, no leaked frames.
        assert m.disk.allocated_blocks == stream.num_blocks + out.num_blocks
        assert m.budget.in_use == 0

    def test_resume_at_every_crash_point(self):
        data = shuffled(300, seed=9)
        reference = self._reference(data)
        for crash_after in (10, 60, 110, 160):
            m = machine()
            stream = FileStream.from_records(m, data)
            manifest = SortManifest()
            out = None
            plan = FaultPlan(crash_after_writes=crash_after)
            try:
                with m.inject_faults(plan):
                    out = checkpointed_merge_sort(
                        m, stream, manifest, fan_in=2
                    )
            except SimulatedCrash:
                out = checkpointed_merge_sort(m, stream, manifest, fan_in=2)
            assert list(out) == reference
            assert (m.disk.allocated_blocks
                    == stream.num_blocks + out.num_blocks)
            assert m.budget.in_use == 0

    def test_verify_outputs_redoes_torn_pass(self):
        data = shuffled(300, seed=10)
        reference = self._reference(data)
        m = machine()
        stream = FileStream.from_records(m, data)
        manifest = SortManifest()
        with m.inject_faults(FaultPlan(torn_writes={3})) as inj:
            out = checkpointed_merge_sort(
                m, stream, manifest, fan_in=2, verify_outputs=True
            )
        assert inj.injected["torn-write"] == 1
        assert manifest.passes_redone == 1
        assert list(out) == reference

    def test_done_manifest_short_circuits(self):
        data = shuffled(100, seed=11)
        m = machine()
        stream = FileStream.from_records(m, data)
        manifest = SortManifest()
        out = checkpointed_merge_sort(m, stream, manifest, fan_in=2)
        before = m.stats()
        again = checkpointed_merge_sort(m, stream, manifest, fan_in=2)
        assert (m.stats() - before).total == 0
        assert list(again) == sorted(data)


class TestFileBackedFaults:
    """The whole fault stack — injection, retries, torn writes,
    checkpoint/restart — runs unchanged on the real-file backend."""

    def _file_machine(self, tmp_path, name, B=8, m=6, D=1):
        disk = FileDiskArray(B, num_disks=D, path=str(tmp_path / name))
        return Machine(block_size=B, memory_blocks=m, num_disks=D, disk=disk)

    def test_chaos_sort_counters_match_memory_backend(self, tmp_path):
        data = shuffled(300, seed=21)
        plan = FaultPlan(seed=6, read_error_rate=0.08, write_error_rate=0.04)
        results = []
        for m in (machine(), self._file_machine(tmp_path, "chaos.blocks")):
            with m.inject_faults(plan):
                stream = FileStream.from_records(m, data)
                out = external_merge_sort(m, stream, fan_in=2)
                results.append((list(out), m.stats()))
        (mem_out, mem_stats), (file_out, file_stats) = results
        assert file_out == mem_out == sorted(data)
        assert file_stats == mem_stats  # faults/retries/stalls included
        assert file_stats.faults > 0

    def test_crash_resume_on_file_backend_byte_identical(self, tmp_path):
        data = shuffled(400, seed=22)
        m = self._file_machine(tmp_path, "resume.blocks")
        stream = FileStream.from_records(m, data)
        manifest = SortManifest()
        with pytest.raises(SimulatedCrash):
            with m.inject_faults(FaultPlan(crash_after_writes=120)):
                checkpointed_merge_sort(m, stream, manifest, fan_in=2)
        assert manifest.committed_passes >= 1
        # In-process resume (the restart-after-close path lives in
        # tests/test_filedisk.py) from a JSON round-trip of the manifest.
        manifest = SortManifest.from_json(manifest.to_json())
        out = checkpointed_merge_sort(m, stream, manifest, fan_in=2)
        assert list(out) == sorted(data)
        assert m.disk.allocated_blocks == stream.num_blocks + out.num_blocks
        assert m.budget.in_use == 0

    def test_verify_outputs_redoes_torn_pass_on_file_backend(self, tmp_path):
        data = shuffled(300, seed=23)
        m = self._file_machine(tmp_path, "redo.blocks")
        stream = FileStream.from_records(m, data)
        manifest = SortManifest()
        with m.inject_faults(FaultPlan(torn_writes={3})) as inj:
            out = checkpointed_merge_sort(
                m, stream, manifest, fan_in=2, verify_outputs=True
            )
        assert inj.injected["torn-write"] == 1
        assert manifest.passes_redone == 1
        assert list(out) == sorted(data)


class TestInjectFaultsContext:
    def test_nesting_restores_previous_injector(self):
        m = machine()
        with m.inject_faults(FaultPlan(seed=1)) as outer:
            with m.inject_faults(FaultPlan(seed=2)) as inner:
                assert m.disk.fault_injector is inner
            assert m.disk.fault_injector is outer
        assert m.disk.fault_injector is None

    def test_crash_fires_exactly_once(self):
        m = machine()
        with m.inject_faults(FaultPlan(crash_after_writes=3)) as inj:
            with pytest.raises(SimulatedCrash):
                FileStream.from_records(m, shuffled(200))
            # The machine is usable again after the crash is observed.
            stream = FileStream.from_records(m, shuffled(40))
            assert len(stream) == 40
        assert inj.injected["crash"] == 1

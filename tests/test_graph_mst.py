"""Tests for minimum spanning trees."""

import random

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ConfigurationError, Machine, MemoryLimitExceeded
from repro.graph import external_boruvka, semi_external_kruskal
from repro.workloads import components_graph, connected_random_graph


def machine(B=32, m=16):
    return Machine(block_size=B, memory_blocks=m)


def weighted_graph(n, seed, avg_degree=5):
    _, edges = connected_random_graph(n, avg_degree=avg_degree, seed=seed)
    rng = random.Random(seed)
    return [(u, v, rng.randint(1, 1_000)) for u, v in edges]


def reference_weight(wedges):
    graph = nx.Graph()
    for u, v, w in wedges:
        if not graph.has_edge(u, v) or graph[u][v]["weight"] > w:
            graph.add_edge(u, v, weight=w)
    forest = nx.minimum_spanning_forest = nx.minimum_spanning_tree(graph)
    return sum(d["weight"] for _, _, d in forest.edges(data=True))


ALGORITHMS = [semi_external_kruskal, external_boruvka]


class TestMST:
    @pytest.mark.parametrize("mst", ALGORITHMS)
    def test_matches_networkx_weight(self, mst):
        n = 300
        wedges = weighted_graph(n, seed=1)
        total, chosen = mst(machine(), n, wedges)
        assert total == reference_weight(wedges)
        assert len(chosen) == n - 1

    @pytest.mark.parametrize("mst", ALGORITHMS)
    def test_chosen_edges_form_spanning_tree(self, mst):
        n = 200
        wedges = weighted_graph(n, seed=2)
        total, chosen = mst(machine(), n, wedges)
        graph = nx.Graph()
        graph.add_nodes_from(range(n))
        graph.add_weighted_edges_from(chosen)
        assert nx.is_connected(graph)
        assert graph.number_of_edges() == n - 1
        assert sum(w for _, _, w in chosen) == total

    @pytest.mark.parametrize("mst", ALGORITHMS)
    def test_disconnected_graph_gives_forest(self, mst):
        n, edges, labels = components_graph(150, 5, seed=3)
        rng = random.Random(3)
        wedges = [(u, v, rng.randint(1, 100)) for u, v in edges]
        total, chosen = mst(machine(), n, wedges)
        assert len(chosen) == n - 5  # n - #components edges
        graph = nx.Graph()
        graph.add_nodes_from(range(n))
        graph.add_weighted_edges_from(chosen)
        assert nx.number_connected_components(graph) == 5

    @pytest.mark.parametrize("mst", ALGORITHMS)
    def test_both_pick_same_weight_under_ties(self, mst):
        n = 120
        _, edges = connected_random_graph(n, avg_degree=4, seed=4)
        wedges = [(u, v, 7) for u, v in edges]  # all weights equal
        total, chosen = mst(machine(), n, wedges)
        assert total == 7 * (n - 1)
        assert len(chosen) == n - 1

    @pytest.mark.parametrize("mst", ALGORITHMS)
    def test_self_loops_ignored(self, mst):
        wedges = [(0, 0, 1), (0, 1, 5)]
        total, chosen = mst(machine(), 2, wedges)
        assert total == 5
        assert chosen == [(0, 1, 5)]

    @pytest.mark.parametrize("mst", ALGORITHMS)
    def test_parallel_edges_take_cheapest(self, mst):
        wedges = [(0, 1, 9), (0, 1, 2), (1, 2, 4)]
        total, chosen = mst(machine(), 3, wedges)
        assert total == 6
        assert (0, 1, 2) in chosen

    @pytest.mark.parametrize("mst", ALGORITHMS)
    def test_no_edges(self, mst):
        total, chosen = mst(machine(), 5, [])
        assert total == 0
        assert chosen == []

    @pytest.mark.parametrize("mst", ALGORITHMS)
    def test_out_of_range_edge_rejected(self, mst):
        with pytest.raises(ConfigurationError):
            mst(machine(), 2, [(0, 7, 1)])

    def test_kruskal_requires_vertices_in_memory(self):
        n = 5_000  # > M = 512
        wedges = weighted_graph(200, seed=5)
        with pytest.raises(MemoryLimitExceeded):
            semi_external_kruskal(machine(), n, wedges)

    def test_boruvka_no_leaks(self):
        m = machine()
        n = 200
        wedges = weighted_graph(n, seed=6)
        before = m.disk.allocated_blocks
        external_boruvka(m, n, wedges)
        assert m.disk.allocated_blocks == before
        assert m.budget.in_use == 0

    def test_algorithms_agree_on_distinct_weights(self):
        n = 400
        _, edges = connected_random_graph(n, avg_degree=4, seed=7)
        wedges = [(u, v, i * 2 + 1) for i, (u, v) in enumerate(edges)]
        w1, c1 = semi_external_kruskal(machine(m=32), n, wedges)
        w2, c2 = external_boruvka(machine(), n, wedges)
        assert w1 == w2
        assert sorted(c1) == sorted(c2)  # unique MST when weights distinct

    @given(st.integers(2, 80), st.integers(0, 10**6))
    @settings(max_examples=15, deadline=None)
    def test_property_matches_networkx(self, n, seed):
        wedges = weighted_graph(n, seed=seed, avg_degree=3)
        expected = reference_weight(wedges)
        w1, _ = semi_external_kruskal(machine(B=8, m=16), n, wedges)
        w2, _ = external_boruvka(machine(B=8, m=8), n, wedges)
        assert w1 == w2 == expected

"""Test-suite configuration.

Hypothesis runs derandomized so the suite is fully deterministic: the
simulated disk already makes every I/O count exact, and fixed example
generation extends that reproducibility to the property-based tests.
"""

from hypothesis import HealthCheck, settings

settings.register_profile(
    "emkit",
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("emkit")

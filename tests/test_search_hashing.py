"""Tests for extendible hashing."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ConfigurationError, KeyNotFound, Machine
from repro.search import BPlusTree, ExtendibleHashTable
from repro.workloads import distinct_ints


def machine(B=16, m=8):
    return Machine(block_size=B, memory_blocks=m)


def build_table(keys, B=16, m=8):
    m_ = machine(B, m)
    table = ExtendibleHashTable(m_)
    for k in keys:
        table.insert(k, f"v{k}")
    return m_, table


class TestBasicOperations:
    def test_insert_then_get(self):
        _, table = build_table([5, 1, 9])
        assert table.get(5) == "v5"
        assert table.get(1) == "v1"
        assert table.get(9) == "v9"

    def test_get_missing_returns_default(self):
        _, table = build_table([1])
        assert table.get(99) is None
        assert table.get(99, "absent") == "absent"

    def test_contains(self):
        _, table = build_table([1, 2])
        assert 1 in table
        assert 3 not in table

    def test_upsert_replaces_value(self):
        _, table = build_table([7])
        table.insert(7, "new")
        assert table.get(7) == "new"
        assert len(table) == 1

    def test_len_tracks_distinct_keys(self):
        _, table = build_table([3, 1, 4, 1, 5])
        assert len(table) == 4

    def test_empty_table(self):
        m_ = machine()
        table = ExtendibleHashTable(m_)
        assert len(table) == 0
        assert table.get(1) is None
        assert list(table.items()) == []
        table.check_invariants()

    def test_items_yields_all_pairs(self):
        keys = distinct_ints(500, seed=1)
        _, table = build_table(keys)
        assert sorted(k for k, _ in table.items()) == sorted(keys)

    def test_string_keys(self):
        m_ = machine()
        table = ExtendibleHashTable(m_)
        words = [f"word{i}" for i in range(300)]
        for w in words:
            table.insert(w, len(w))
        for w in words[::17]:
            assert table.get(w) == len(w)

    def test_invalid_bucket_capacity_rejected(self):
        with pytest.raises(ConfigurationError):
            ExtendibleHashTable(machine(), bucket_capacity=0)
        with pytest.raises(ConfigurationError):
            ExtendibleHashTable(machine(B=8, m=8), bucket_capacity=20)


class TestGrowth:
    def test_directory_doubles_under_load(self):
        _, table = build_table(distinct_ints(2000, seed=2))
        assert table.global_depth > 0
        assert table.num_buckets > 1
        table.check_invariants()

    def test_all_keys_retrievable_after_growth(self):
        keys = distinct_ints(2000, seed=3)
        _, table = build_table(keys)
        for k in keys[::41]:
            assert table.get(k) == f"v{k}"

    def test_heavy_hash_collisions_use_overflow_chains(self):
        """Keys engineered to share every directory bit still insert and
        look up correctly (overflow-chain fallback)."""

        class SameHash:
            def __init__(self, n):
                self.n = n

            def __hash__(self):
                return 12345  # all collide

            def __eq__(self, other):
                return isinstance(other, SameHash) and self.n == other.n

        m_ = machine()
        table = ExtendibleHashTable(m_)
        objs = [SameHash(i) for i in range(100)]
        for i, o in enumerate(objs):
            table.insert(o, i)
        assert len(table) == 100
        for i, o in enumerate(objs):
            assert table.get(o) == i


class TestDeletion:
    def test_delete_key(self):
        _, table = build_table([1, 2, 3])
        table.delete(2)
        assert table.get(2) is None
        assert len(table) == 2

    def test_delete_missing_raises(self):
        _, table = build_table([1])
        with pytest.raises(KeyNotFound):
            table.delete(99)

    def test_delete_all(self):
        keys = distinct_ints(600, seed=4)
        _, table = build_table(keys)
        for k in keys:
            table.delete(k)
        assert len(table) == 0
        assert list(table.items()) == []

    def test_interleaved_insert_delete(self):
        m_ = machine()
        table = ExtendibleHashTable(m_)
        reference = {}
        rng = random.Random(9)
        for step in range(3000):
            k = rng.randrange(400)
            if k in reference and rng.random() < 0.5:
                table.delete(k)
                del reference[k]
            else:
                table.insert(k, step)
                reference[k] = step
        assert dict(table.items()) == reference
        table.check_invariants()


class TestIOBehaviour:
    def test_cold_lookup_costs_one_io(self):
        m_, table = build_table(distinct_ints(3000, seed=5), m=4)
        m_.pool.flush_all()
        hits = 0
        for probe in [11, 222, 1999, 2500]:
            m_.pool.drop_all()
            m_.reset_stats()
            table.get(probe)
            assert m_.stats().reads == 1
            hits += 1
        assert hits == 4

    def test_hash_lookup_beats_btree_lookup(self):
        keys = distinct_ints(4000, seed=6)
        m1, table = build_table(keys, m=4)
        m2 = machine(m=4)
        tree = BPlusTree.bulk_load(
            m2, iter(sorted((k, f"v{k}") for k in keys))
        )
        probes = keys[::100]
        m1.pool.drop_all()
        m1.reset_stats()
        for p in probes:
            table.get(p)
            m1.pool.drop_all()
        m2.pool.drop_all()
        m2.reset_stats()
        for p in probes:
            tree.get(p)
            m2.pool.drop_all()
        assert m1.stats().reads < m2.stats().reads


class TestPropertyBased:
    @given(st.lists(st.integers(-10**9, 10**9), max_size=300))
    @settings(max_examples=30, deadline=None)
    def test_matches_dict_semantics(self, keys):
        m_ = machine(B=8)
        table = ExtendibleHashTable(m_)
        reference = {}
        for i, k in enumerate(keys):
            table.insert(k, i)
            reference[k] = i
        assert dict(table.items()) == reference
        table.check_invariants()

    @given(
        st.lists(
            st.tuples(st.booleans(), st.integers(0, 50)),
            max_size=250,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_insert_delete_fuzz(self, operations):
        m_ = machine(B=8)
        table = ExtendibleHashTable(m_)
        reference = {}
        for is_delete, k in operations:
            if is_delete and k in reference:
                table.delete(k)
                del reference[k]
            elif not is_delete:
                table.insert(k, k * 2)
                reference[k] = k * 2
        assert dict(table.items()) == reference
        table.check_invariants()

"""Tests for external stacks and queues."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import EMError, ExternalQueue, ExternalStack, Machine


def machine(B=8, m=8):
    return Machine(block_size=B, memory_blocks=m)


class TestExternalStack:
    def test_lifo_order(self):
        with ExternalStack(machine()) as stack:
            for i in range(100):
                stack.push(i)
            assert [stack.pop() for _ in range(100)] == list(
                range(99, -1, -1)
            )

    def test_peek(self):
        with ExternalStack(machine()) as stack:
            stack.push("a")
            stack.push("b")
            assert stack.peek() == "b"
            assert len(stack) == 2

    def test_peek_spilled_top(self):
        m = machine(B=4)
        with ExternalStack(m) as stack:
            for i in range(8):  # fills 2B -> spills the older half
                stack.push(i)
            for _ in range(4):  # drain the in-memory half
                stack.pop()
            assert not stack._buffer  # top block is on disk now
            assert stack.peek() == 3
            assert stack.pop() == 3

    def test_empty_pop_raises(self):
        with ExternalStack(machine()) as stack:
            with pytest.raises(EMError):
                stack.pop()
            with pytest.raises(EMError):
                stack.peek()

    def test_amortized_io_is_one_over_b(self):
        m = machine(B=16)
        n = 1600
        with ExternalStack(m) as stack:
            with m.measure() as io:
                for i in range(n):
                    stack.push(i)
                for _ in range(n):
                    stack.pop()
        assert io.total <= 2 * (2 * n / m.B)

    def test_alternating_push_pop_at_boundary_does_not_thrash(self):
        m = machine(B=8)
        with ExternalStack(m) as stack:
            for i in range(16):  # spill once
                stack.push(i)
            m.reset_stats()
            for _ in range(50):
                stack.push(99)
                stack.pop()
            assert m.stats().total <= 4

    def test_close_releases_resources(self):
        m = machine()
        stack = ExternalStack(m)
        for i in range(100):
            stack.push(i)
        stack.close()
        assert m.budget.in_use == 0
        assert m.disk.allocated_blocks == 0
        with pytest.raises(EMError):
            stack.push(1)
        stack.close()  # idempotent

    @given(st.lists(st.sampled_from(["push", "pop"]), max_size=400))
    @settings(max_examples=25, deadline=None)
    def test_property_matches_list(self, ops):
        reference = []
        counter = 0
        with ExternalStack(machine(B=4)) as stack:
            for op in ops:
                if op == "push":
                    stack.push(counter)
                    reference.append(counter)
                    counter += 1
                elif reference:
                    assert stack.pop() == reference.pop()
            assert len(stack) == len(reference)
            while reference:
                assert stack.pop() == reference.pop()


class TestExternalQueue:
    def test_fifo_order(self):
        with ExternalQueue(machine()) as queue:
            for i in range(100):
                queue.enqueue(i)
            assert [queue.dequeue() for _ in range(100)] == list(range(100))

    def test_peek(self):
        with ExternalQueue(machine()) as queue:
            queue.enqueue("a")
            queue.enqueue("b")
            assert queue.peek() == "a"
            assert len(queue) == 2

    def test_empty_dequeue_raises(self):
        with ExternalQueue(machine()) as queue:
            with pytest.raises(EMError):
                queue.dequeue()
            with pytest.raises(EMError):
                queue.peek()

    def test_amortized_io_is_one_over_b(self):
        m = machine(B=16)
        n = 1600
        with ExternalQueue(m) as queue:
            with m.measure() as io:
                for i in range(n):
                    queue.enqueue(i)
                for _ in range(n):
                    queue.dequeue()
        assert io.total <= 2 * (2 * n / m.B)

    def test_interleaved_operations(self):
        rng = random.Random(1)
        import collections

        reference = collections.deque()
        counter = 0
        with ExternalQueue(machine(B=4)) as queue:
            for _ in range(1000):
                if reference and rng.random() < 0.45:
                    assert queue.dequeue() == reference.popleft()
                else:
                    queue.enqueue(counter)
                    reference.append(counter)
                    counter += 1
            while reference:
                assert queue.dequeue() == reference.popleft()

    def test_close_releases_resources(self):
        m = machine()
        queue = ExternalQueue(m)
        for i in range(100):
            queue.enqueue(i)
        queue.close()
        assert m.budget.in_use == 0
        assert m.disk.allocated_blocks == 0
        with pytest.raises(EMError):
            queue.enqueue(1)

    @given(st.lists(st.sampled_from(["enq", "deq"]), max_size=400))
    @settings(max_examples=25, deadline=None)
    def test_property_matches_deque(self, ops):
        import collections

        reference = collections.deque()
        counter = 0
        with ExternalQueue(machine(B=4)) as queue:
            for op in ops:
                if op == "enq":
                    queue.enqueue(counter)
                    reference.append(counter)
                    counter += 1
                elif reference:
                    assert queue.dequeue() == reference.popleft()
            assert len(queue) == len(reference)

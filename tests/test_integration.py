"""Integration tests: pipelines spanning multiple subsystems.

These exercise realistic compositions — sort feeding bulk load, joins
feeding aggregation, graph results indexed for queries — and check both
correctness and that I/O and memory accounting stay consistent across
module boundaries.
"""

import pytest

from repro.core import FileStream, Machine, sort_io
from repro.buffer import BufferTree
from repro.graph import AdjacencyStore, list_ranking, mr_bfs
from repro.pq import ExternalPriorityQueue
from repro.relational import Table, group_by, sort_merge_join
from repro.search import BPlusTree, ExtendibleHashTable
from repro.sort import external_merge_sort, is_sorted_stream
from repro.workloads import (
    connected_random_graph,
    distinct_ints,
    foreign_key_relations,
    random_linked_list,
    uniform_ints,
)


class TestSortToIndexPipeline:
    def test_sort_then_bulk_load_then_query(self):
        """ETL path: unordered records -> external sort -> B+-tree bulk
        load -> point and range queries."""
        machine = Machine(block_size=32, memory_blocks=8)
        keys = distinct_ints(5_000, seed=1)
        raw = FileStream.from_records(
            machine, [(k, f"payload-{k}") for k in keys]
        )
        ordered = external_merge_sort(machine, raw, key=lambda r: r[0])
        tree = BPlusTree.bulk_load(machine, iter(ordered))
        assert len(tree) == 5_000
        assert tree.get(keys[17]) == f"payload-{keys[17]}"
        window = [k for k, _ in tree.range_query(100, 200)]
        assert window == [k for k in range(100, 201)]
        tree.check_invariants(strict_fill=False)

    def test_sorted_output_feeds_hash_and_tree_identically(self):
        machine = Machine(block_size=32, memory_blocks=8)
        keys = distinct_ints(2_000, seed=2)
        tree = BPlusTree(machine)
        table = ExtendibleHashTable(machine)
        for k in keys:
            tree.insert(k, k * 3)
            table.insert(k, k * 3)
        for probe in keys[::97]:
            assert tree.get(probe) == table.get(probe)


class TestDatabasePipeline:
    def test_join_then_group_by(self):
        """orders ⋈ customers -> revenue per segment."""
        machine = Machine(block_size=32, memory_blocks=8)
        customers, orders = foreign_key_relations(200, 2_000, seed=3)
        orders = [(k, (i * 13) % 100) for i, (k, _) in enumerate(orders)]
        left = Table.from_rows(
            machine, ("cid", "seg"),
            [(k, k % 5) for k, _ in customers],
        )
        right = Table.from_rows(machine, ("cid", "amount"), orders)
        joined = sort_merge_join(left, right, "cid", "cid")
        assert len(joined) == 2_000
        revenue = group_by(joined, "seg", [("sum", "amount"),
                                           ("count", "amount")])
        rows = list(revenue.rows())
        assert sorted(r[0] for r in rows) == [0, 1, 2, 3, 4]
        assert sum(r[2] for r in rows) == 2_000
        total = sum(amount for _, amount in orders)
        assert sum(r[1] for r in rows) == total

    def test_buffer_tree_as_staging_index(self):
        """Batched ingest through a buffer tree, then range-style export
        back into a relational table."""
        machine = Machine(block_size=32, memory_blocks=16)
        tree = BufferTree(machine)
        keys = distinct_ints(3_000, seed=4)
        for k in keys:
            tree.insert(k, k % 7)
        table = Table.from_rows(machine, ("k", "v"), tree.items())
        grouped = group_by(table, "v", [("count", "k")])
        counts = {r[0]: r[1] for r in grouped.rows()}
        assert sum(counts.values()) == 3_000


class TestGraphPipeline:
    def test_bfs_distances_indexed_by_btree(self):
        machine = Machine(block_size=32, memory_blocks=8)
        n, edges = connected_random_graph(800, seed=5)
        adjacency = AdjacencyStore.from_edges(machine, n, edges)
        distances = mr_bfs(machine, adjacency, 0)
        tree = BPlusTree.bulk_load(
            machine, iter(sorted(distances.items()))
        )
        probe = max(distances, key=distances.get)
        assert tree.get(probe) == distances[probe]

    def test_list_ranking_feeds_priority_queue(self):
        """Rank a list externally, then drain nodes in rank order through
        the external PQ — a miniature time-forward processing setup."""
        machine = Machine(block_size=32, memory_blocks=16)
        pairs = random_linked_list(1_000, seed=6)
        ranks = list_ranking(machine, pairs)
        with ExternalPriorityQueue(machine) as pq:
            for node, rank in ranks.items():
                pq.insert(rank, node)
            order = [pq.delete_min()[1] for _ in range(len(ranks))]
        successor = dict(pairs)
        for first, second in zip(order, order[1:]):
            assert successor[first] == second


class TestAccountingConsistency:
    def test_pipeline_leaves_budget_clean(self):
        machine = Machine(block_size=32, memory_blocks=8)
        data = uniform_ints(2_000, seed=7)
        stream = FileStream.from_records(machine, data)
        result = external_merge_sort(machine, stream)
        assert is_sorted_stream(result)
        assert machine.budget.in_use == 0
        assert machine.budget.peak <= machine.M

    def test_io_measured_across_modules_adds_up(self):
        machine = Machine(block_size=32, memory_blocks=8)
        data = uniform_ints(3_000, seed=8)
        stream = FileStream.from_records(machine, data)
        with machine.measure() as total:
            with machine.measure() as phase1:
                ordered = external_merge_sort(machine, stream)
            with machine.measure() as phase2:
                BPlusTree.bulk_load(
                    machine,
                    iter((k, i) for i, k in enumerate(ordered)),
                )
        assert total.total == phase1.total + phase2.total

    def test_disk_usage_bounded_during_sort(self):
        """Peak disk usage stays O(N/B): intermediates are freed."""
        machine = Machine(block_size=32, memory_blocks=8)
        data = uniform_ints(8_000, seed=9)
        stream = FileStream.from_records(machine, data)
        external_merge_sort(machine, stream)
        n_blocks = stream.num_blocks
        assert machine.disk.high_water_blocks <= 4 * n_blocks

"""Tests for external suffix-array construction."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Machine
from repro.text import search_suffix_array, suffix_array, suffix_array_naive


def machine(B=16, m=8):
    return Machine(block_size=B, memory_blocks=m)


class TestSuffixArray:
    def test_banana(self):
        m = machine()
        assert suffix_array(m, "banana") == suffix_array_naive("banana")
        assert suffix_array(m, "banana") == [5, 3, 1, 0, 4, 2]

    def test_empty_and_single(self):
        m = machine()
        assert suffix_array(m, "") == []
        assert suffix_array(m, "x") == [0]

    def test_all_equal_symbols(self):
        m = machine()
        text = "aaaaaaaaaa"
        assert suffix_array(m, text) == list(range(9, -1, -1))

    def test_already_sorted_text(self):
        m = machine()
        text = "abcdefgh"
        assert suffix_array(m, text) == list(range(8))

    def test_random_text_matches_naive(self):
        rng = random.Random(1)
        text = "".join(rng.choice("abc") for _ in range(500))
        m = machine()
        assert suffix_array(m, text) == suffix_array_naive(text)

    def test_long_text_beyond_memory(self):
        rng = random.Random(2)
        text = "".join(rng.choice("ab") for _ in range(3_000))
        m = machine()  # M = 128 << 3000
        assert suffix_array(m, text) == suffix_array_naive(text)

    def test_integer_alphabet(self):
        m = machine()
        text = [3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5]
        assert suffix_array(m, text) == suffix_array_naive(text)

    def test_periodic_text(self):
        m = machine()
        text = "abab" * 100
        assert suffix_array(m, text) == suffix_array_naive(text)

    def test_no_leaks(self):
        m = machine()
        before = m.disk.allocated_blocks
        suffix_array(m, "mississippi" * 20)
        assert m.disk.allocated_blocks == before
        assert m.budget.in_use == 0

    @given(st.text(alphabet="abz", max_size=120))
    @settings(max_examples=30, deadline=None)
    def test_property_matches_naive(self, text):
        m = machine(B=8, m=6)
        assert suffix_array(m, text) == suffix_array_naive(text)


class TestSearch:
    def build(self, text):
        m = machine()
        return suffix_array(m, text)

    def test_finds_all_occurrences(self):
        text = "abracadabra"
        sa = self.build(text)
        assert search_suffix_array(text, sa, "abra") == [0, 7]
        assert search_suffix_array(text, sa, "a") == [0, 3, 5, 7, 10]

    def test_absent_pattern(self):
        text = "abracadabra"
        sa = self.build(text)
        assert search_suffix_array(text, sa, "zebra") == []

    def test_empty_pattern_matches_everywhere(self):
        text = "abc"
        sa = self.build(text)
        assert search_suffix_array(text, sa, "") == [0, 1, 2]

    def test_full_text_pattern(self):
        text = "hello"
        sa = self.build(text)
        assert search_suffix_array(text, sa, "hello") == [0]

    @given(st.text(alphabet="ab", min_size=1, max_size=60),
           st.text(alphabet="ab", min_size=1, max_size=4))
    @settings(max_examples=30, deadline=None)
    def test_property_matches_scan(self, text, pattern):
        sa = self.build(text)
        expected = [
            i for i in range(len(text))
            if text[i:i + len(pattern)] == pattern
        ]
        assert search_suffix_array(text, sa, pattern) == expected

"""Tests for the random-access block file."""

import pytest

from repro.core import ConfigurationError, Machine, StreamError
from repro.core.blockfile import BlockFile


def machine():
    return Machine(block_size=8, memory_blocks=4)


class TestBlockFile:
    def test_write_then_read(self):
        m = machine()
        bf = BlockFile(m, 4)
        bf.write_block(2, [1, 2, 3])
        assert bf.read_block(2) == [1, 2, 3]

    def test_blocks_start_empty(self):
        m = machine()
        bf = BlockFile(m, 2)
        assert bf.read_block(0) == []

    def test_each_access_costs_one_io(self):
        m = machine()
        bf = BlockFile(m, 4)
        m.reset_stats()
        bf.write_block(0, [1])
        bf.read_block(0)
        s = m.stats()
        assert s.writes == 1 and s.reads == 1

    def test_out_of_range_rejected(self):
        m = machine()
        bf = BlockFile(m, 2)
        with pytest.raises(StreamError):
            bf.read_block(2)
        with pytest.raises(StreamError):
            bf.write_block(-1, [])

    def test_scan_in_order(self):
        m = machine()
        bf = BlockFile.from_records(m, list(range(20)))
        assert list(bf.scan()) == list(range(20))
        assert bf.num_blocks == 3

    def test_scan_reserves_one_frame(self):
        m = machine()
        bf = BlockFile.from_records(m, list(range(20)))
        it = bf.scan()
        next(it)
        assert m.budget.in_use == m.B
        it.close()
        assert m.budget.in_use == 0

    def test_delete_frees_blocks(self):
        m = machine()
        bf = BlockFile(m, 5)
        bf.delete()
        assert m.disk.allocated_blocks == 0
        with pytest.raises(StreamError):
            bf.read_block(0)
        bf.delete()  # idempotent

    def test_negative_size_rejected(self):
        with pytest.raises(ConfigurationError):
            BlockFile(machine(), -1)

    def test_block_id_exposed_for_pool_use(self):
        m = machine()
        bf = BlockFile(m, 2)
        bf.write_block(1, [42])
        assert m.pool.get(bf.block_id(1)) == [42]

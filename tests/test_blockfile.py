"""Tests for the random-access block file."""

import pytest

from repro.core import ConfigurationError, Machine, StreamError
from repro.core.blockfile import BlockFile


def machine():
    return Machine(block_size=8, memory_blocks=4)


class TestBlockFile:
    def test_write_then_read(self):
        m = machine()
        bf = BlockFile(m, 4)
        bf.write_block(2, [1, 2, 3])
        assert bf.read_block(2) == [1, 2, 3]

    def test_blocks_start_empty(self):
        m = machine()
        bf = BlockFile(m, 2)
        assert bf.read_block(0) == []

    def test_each_access_costs_one_io(self):
        m = machine()
        bf = BlockFile(m, 4)
        m.reset_stats()
        bf.write_block(0, [1])
        bf.read_block(0)
        s = m.stats()
        assert s.writes == 1 and s.reads == 1

    def test_out_of_range_rejected(self):
        m = machine()
        bf = BlockFile(m, 2)
        with pytest.raises(StreamError):
            bf.read_block(2)
        with pytest.raises(StreamError):
            bf.write_block(-1, [])

    def test_scan_in_order(self):
        m = machine()
        bf = BlockFile.from_records(m, list(range(20)))
        assert list(bf.scan()) == list(range(20))
        assert bf.num_blocks == 3

    def test_holds_one_frame_from_construction(self):
        m = machine()
        bf = BlockFile.from_records(m, list(range(20)))
        assert m.budget.in_use == m.B
        it = bf.scan()
        next(it)
        assert m.budget.in_use == m.B  # scan stages through the held frame
        it.close()
        bf.close()
        assert m.budget.in_use == 0

    def test_close_is_idempotent_and_blocks_direct_io(self):
        m = machine()
        bf = BlockFile(m, 2)
        bf.write_block(1, [42])
        bf.close()
        bf.close()
        assert m.budget.in_use == 0
        with pytest.raises(StreamError):
            bf.read_block(1)
        with pytest.raises(StreamError):
            bf.write_block(0, [1])
        with pytest.raises(StreamError):
            bf.scan()
        # Pool-mediated access keeps working after close.
        assert m.pool.get(bf.block_id(1)) == [42]
        bf.delete()

    def test_context_manager_releases_frame(self):
        m = machine()
        with BlockFile(m, 2) as bf:
            bf.write_block(0, [1, 2])
            assert m.budget.in_use == m.B
        assert m.budget.in_use == 0

    def test_context_manager_releases_frame_on_error(self):
        m = machine()
        with pytest.raises(RuntimeError):
            with BlockFile(m, 2) as bf:
                bf.write_block(0, [1])
                raise RuntimeError("mid-use failure")
        assert m.budget.in_use == 0

    def test_delete_releases_frame(self):
        m = machine()
        bf = BlockFile(m, 3)
        bf.delete()
        assert m.budget.in_use == 0
        bf.delete()  # still idempotent
        assert m.budget.in_use == 0

    def test_construction_rejected_when_budget_full(self):
        from repro.core import MemoryLimitExceeded

        m = machine()
        m.budget.acquire(m.M)  # budget exhausted
        blocks_before = m.disk.allocated_blocks
        with pytest.raises(MemoryLimitExceeded):
            BlockFile(m, 2)
        # No disk blocks leaked by the failed construction.
        assert m.disk.allocated_blocks == blocks_before
        m.budget.release(m.M)

    def test_delete_frees_blocks(self):
        m = machine()
        bf = BlockFile(m, 5)
        bf.delete()
        assert m.disk.allocated_blocks == 0
        with pytest.raises(StreamError):
            bf.read_block(0)
        bf.delete()  # idempotent

    def test_negative_size_rejected(self):
        with pytest.raises(ConfigurationError):
            BlockFile(machine(), -1)

    def test_block_id_exposed_for_pool_use(self):
        m = machine()
        bf = BlockFile(m, 2)
        bf.write_block(1, [42])
        assert m.pool.get(bf.block_id(1)) == [42]

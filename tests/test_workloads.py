"""Tests for the workload generators."""

from collections import Counter

from repro.workloads import (
    components_graph,
    connected_random_graph,
    distinct_ints,
    duplicate_heavy_ints,
    foreign_key_relations,
    grid_graph,
    nearly_sorted_ints,
    orthogonal_segments,
    random_graph,
    random_linked_list,
    relation,
    reversed_ints,
    sorted_ints,
    uniform_ints,
    zipf_ints,
)


class TestKeyGenerators:
    def test_uniform_deterministic_by_seed(self):
        assert uniform_ints(100, seed=1) == uniform_ints(100, seed=1)
        assert uniform_ints(100, seed=1) != uniform_ints(100, seed=2)

    def test_uniform_respects_range(self):
        data = uniform_ints(500, seed=3, low=10, high=20)
        assert all(10 <= x < 20 for x in data)

    def test_distinct_is_permutation(self):
        data = distinct_ints(200, seed=4)
        assert sorted(data) == list(range(200))

    def test_sorted_reversed(self):
        assert sorted_ints(5) == [0, 1, 2, 3, 4]
        assert reversed_ints(5) == [4, 3, 2, 1, 0]

    def test_nearly_sorted_is_permutation(self):
        data = nearly_sorted_ints(300, swaps=10, seed=5)
        assert sorted(data) == list(range(300))
        assert data != list(range(300))

    def test_zipf_is_skewed(self):
        data = zipf_ints(5_000, vocab=100, seed=6)
        counts = Counter(data).most_common()
        assert counts[0][1] > 10 * counts[-1][1]

    def test_duplicate_heavy(self):
        data = duplicate_heavy_ints(1_000, distinct=5, seed=7)
        assert len(set(data)) <= 5


class TestLinkedLists:
    def test_random_linked_list_is_single_chain(self):
        pairs = random_linked_list(100, seed=8)
        successor = dict(pairs)
        assert len(successor) == 100
        tails = [v for v, s in pairs if s == -1]
        assert len(tails) == 1
        heads = set(successor) - {s for s in successor.values() if s != -1}
        assert len(heads) == 1
        # Walking visits every node exactly once.
        node = heads.pop()
        seen = set()
        while node != -1:
            assert node not in seen
            seen.add(node)
            node = successor[node]
        assert len(seen) == 100


class TestGraphs:
    def test_grid_graph_shape(self):
        n, edges = grid_graph(3, 4)
        assert n == 12
        assert len(edges) == 3 * 3 + 2 * 4  # horizontal + vertical

    def test_random_graph_no_loops_or_dupes(self):
        n, edges = random_graph(100, avg_degree=4, seed=9)
        assert all(u < v for u, v in edges)
        assert len(set(edges)) == len(edges)

    def test_connected_random_graph_is_connected(self):
        import collections

        n, edges = connected_random_graph(200, seed=10)
        adjacency = collections.defaultdict(list)
        for u, v in edges:
            adjacency[u].append(v)
            adjacency[v].append(u)
        seen = {0}
        queue = collections.deque([0])
        while queue:
            x = queue.popleft()
            for y in adjacency[x]:
                if y not in seen:
                    seen.add(y)
                    queue.append(y)
        assert len(seen) == n

    def test_components_graph_ground_truth(self):
        import collections

        n, edges, labels = components_graph(120, 5, seed=11)
        assert len(labels) == n
        # No edge crosses components.
        for u, v in edges:
            assert labels[u] == labels[v]
        assert len(set(labels)) == 5


class TestGeometryAndRelations:
    def test_orthogonal_segments_well_formed(self):
        hs, vs = orthogonal_segments(50, 60, seed=12)
        assert len(hs) == 50 and len(vs) == 60
        assert all(x1 <= x2 for _, x1, x2 in hs)
        assert all(y1 <= y2 for _, y1, y2 in vs)

    def test_relation_shape(self):
        rows = relation(100, key_range=10, payload="x", seed=13)
        assert len(rows) == 100
        assert all(0 <= k < 10 for k, _ in rows)
        assert rows[0][1].startswith("x")

    def test_foreign_key_relations_referential_integrity(self):
        build, probe = foreign_key_relations(50, 200, seed=14)
        build_keys = {k for k, _ in build}
        assert build_keys == set(range(50))
        assert all(k in build_keys for k, _ in probe)

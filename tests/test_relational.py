"""Tests for the relational layer."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ConfigurationError, Machine, scan_io
from repro.relational import (
    Table,
    block_nested_loop_join,
    grace_hash_join,
    group_by,
    order_by,
    project,
    select,
    sort_merge_join,
)
from repro.workloads import foreign_key_relations, relation


def machine(B=16, m=8):
    return Machine(block_size=B, memory_blocks=m)


def reference_join(left_rows, right_rows, li, ri):
    return sorted(
        tuple(l) + tuple(r)
        for l in left_rows
        for r in right_rows
        if l[li] == r[ri]
    )


class TestTable:
    def test_from_rows_round_trip(self):
        m = machine()
        rows = [(1, "a"), (2, "b")]
        t = Table.from_rows(m, ("id", "name"), rows)
        assert list(t.rows()) == rows
        assert len(t) == 2

    def test_width_mismatch_rejected(self):
        m = machine()
        with pytest.raises(ConfigurationError):
            Table.from_rows(m, ("id",), [(1, 2)])

    def test_duplicate_columns_rejected(self):
        m = machine()
        with pytest.raises(ConfigurationError):
            Table.from_rows(m, ("id", "id"), [])

    def test_missing_column_rejected(self):
        m = machine()
        t = Table.from_rows(m, ("id",), [(1,)])
        with pytest.raises(ConfigurationError):
            t.column_index("nope")

    def test_key_fn(self):
        m = machine()
        t = Table.from_rows(m, ("a", "b"), [(1, 2)])
        assert t.key_fn("b")((1, 2)) == 2


class TestOperators:
    def test_select(self):
        m = machine()
        t = Table.from_rows(m, ("k", "v"), [(i, i * i) for i in range(50)])
        s = select(t, lambda r: r[0] % 2 == 0)
        assert len(s) == 25
        assert all(r[0] % 2 == 0 for r in s.rows())

    def test_select_io_is_two_scans(self):
        m = machine()
        t = Table.from_rows(m, ("k",), [(i,) for i in range(320)])
        with m.measure() as io:
            select(t, lambda r: True)
        assert io.reads == scan_io(320, m.B)
        assert io.writes == scan_io(320, m.B)

    def test_project(self):
        m = machine()
        t = Table.from_rows(m, ("a", "b", "c"), [(1, 2, 3), (4, 5, 6)])
        p = project(t, ("c", "a"))
        assert p.columns == ("c", "a")
        assert list(p.rows()) == [(3, 1), (6, 4)]

    def test_order_by(self):
        m = machine()
        rows = [(i % 17, i) for i in range(500)]
        t = Table.from_rows(m, ("k", "v"), rows)
        o = order_by(t, "k")
        keys = [r[0] for r in o.rows()]
        assert keys == sorted(keys)
        assert sorted(o.rows()) == sorted(rows)

    def test_group_by_aggregates(self):
        m = machine()
        rows = [(i % 4, i) for i in range(100)]
        t = Table.from_rows(m, ("k", "v"), rows)
        g = group_by(t, "k", [("count", "v"), ("sum", "v"), ("min", "v"),
                              ("max", "v"), ("avg", "v")])
        assert g.columns == ("k", "count_v", "sum_v", "min_v", "max_v",
                             "avg_v")
        result = {r[0]: r[1:] for r in g.rows()}
        for k in range(4):
            values = [i for i in range(100) if i % 4 == k]
            assert result[k] == (
                len(values), sum(values), min(values), max(values),
                sum(values) / len(values),
            )

    def test_group_by_unknown_aggregate_rejected(self):
        m = machine()
        t = Table.from_rows(m, ("k", "v"), [(1, 2)])
        with pytest.raises(ConfigurationError):
            group_by(t, "k", [("median", "v")])

    def test_group_by_empty_table(self):
        m = machine()
        t = Table.from_rows(m, ("k", "v"), [])
        g = group_by(t, "k", [("count", "v")])
        assert list(g.rows()) == []


JOINS = [sort_merge_join, grace_hash_join, block_nested_loop_join]


class TestJoins:
    @pytest.mark.parametrize("join", JOINS)
    def test_foreign_key_join(self, join):
        m = machine()
        build, probe = foreign_key_relations(100, 400, seed=1)
        L = Table.from_rows(m, ("id", "b"), build)
        R = Table.from_rows(m, ("fk", "p"), probe)
        result = join(L, R, "id", "fk")
        assert sorted(result.rows()) == reference_join(build, probe, 0, 0)
        assert result.columns == ("id", "b", "fk", "p")

    @pytest.mark.parametrize("join", JOINS)
    def test_many_to_many(self, join):
        m = machine()
        left = [(k % 3, f"l{i}") for i, k in enumerate(range(30))]
        right = [(k % 3, f"r{i}") for i, k in enumerate(range(20))]
        L = Table.from_rows(m, ("k", "l"), left)
        R = Table.from_rows(m, ("k", "r"), right)
        result = join(L, R, "k", "k")
        assert sorted(result.rows()) == reference_join(left, right, 0, 0)

    @pytest.mark.parametrize("join", JOINS)
    def test_no_matches(self, join):
        m = machine()
        L = Table.from_rows(m, ("k", "l"), [(1, "a")])
        R = Table.from_rows(m, ("k", "r"), [(2, "b")])
        assert list(join(L, R, "k", "k").rows()) == []

    @pytest.mark.parametrize("join", JOINS)
    def test_empty_inputs(self, join):
        m = machine()
        L = Table.from_rows(m, ("k",), [])
        R = Table.from_rows(m, ("k",), [(1,)])
        assert list(join(L, R, "k", "k").rows()) == []

    @pytest.mark.parametrize("join", JOINS)
    def test_skewed_keys(self, join):
        m = machine(m=8)
        left = [(7, f"l{i}") for i in range(300)] + [(1, "x")]
        right = [(7, "r0"), (1, "y"), (2, "z")]
        L = Table.from_rows(m, ("k", "l"), left)
        R = Table.from_rows(m, ("k", "r"), right)
        result = join(L, R, "k", "k")
        assert sorted(result.rows()) == reference_join(left, right, 0, 0)

    def test_column_name_clash_renamed(self):
        m = machine()
        L = Table.from_rows(m, ("k", "v"), [(1, "a")])
        R = Table.from_rows(m, ("k", "v"), [(1, "b")])
        result = sort_merge_join(L, R, "k", "k")
        assert result.columns == ("k", "v", "k_r", "v_r")

    def test_smj_output_sorted_by_key(self):
        m = machine()
        build, probe = foreign_key_relations(80, 200, seed=2)
        L = Table.from_rows(m, ("id", "b"), build)
        R = Table.from_rows(m, ("fk", "p"), probe)
        result = sort_merge_join(L, R, "id", "fk")
        keys = [r[0] for r in result.rows()]
        assert keys == sorted(keys)

    @pytest.mark.parametrize("join", JOINS)
    def test_large_join_beyond_memory(self, join):
        m = machine(B=16, m=8)  # M = 128
        build, probe = foreign_key_relations(600, 1500, seed=3)
        L = Table.from_rows(m, ("id", "b"), build)
        R = Table.from_rows(m, ("fk", "p"), probe)
        result = join(L, R, "id", "fk")
        assert len(result) == 1500  # every probe tuple matches exactly once
        assert m.budget.in_use == 0

    @given(
        st.lists(st.tuples(st.integers(0, 8), st.integers()), max_size=80),
        st.lists(st.tuples(st.integers(0, 8), st.integers()), max_size=80),
    )
    @settings(max_examples=20, deadline=None)
    def test_property_all_joins_agree(self, left, right):
        expected = reference_join(left, right, 0, 0)
        for join in JOINS:
            m = machine(B=8, m=8)
            L = Table.from_rows(m, ("k", "l"), left)
            R = Table.from_rows(m, ("k", "r"), right)
            assert sorted(join(L, R, "k", "k").rows()) == expected


class TestJoinIOProfiles:
    def test_hash_join_beats_bnl_for_large_build_side(self):
        build, probe = foreign_key_relations(2000, 2000, seed=4)
        m1 = machine(B=16, m=8)
        L1 = Table.from_rows(m1, ("id", "b"), build)
        R1 = Table.from_rows(m1, ("fk", "p"), probe)
        with m1.measure() as io_hash:
            grace_hash_join(L1, R1, "id", "fk")
        m2 = machine(B=16, m=8)
        L2 = Table.from_rows(m2, ("id", "b"), build)
        R2 = Table.from_rows(m2, ("fk", "p"), probe)
        with m2.measure() as io_bnl:
            block_nested_loop_join(L2, R2, "id", "fk")
        assert io_hash.total < io_bnl.total

    def test_bnl_wins_when_build_fits_in_memory(self):
        build, probe = foreign_key_relations(50, 3000, seed=5)
        m1 = machine(B=16, m=8)
        L1 = Table.from_rows(m1, ("id", "b"), build)
        R1 = Table.from_rows(m1, ("fk", "p"), probe)
        with m1.measure() as io_bnl:
            block_nested_loop_join(L1, R1, "id", "fk")
        m2 = machine(B=16, m=8)
        L2 = Table.from_rows(m2, ("id", "b"), build)
        R2 = Table.from_rows(m2, ("fk", "p"), probe)
        with m2.measure() as io_smj:
            sort_merge_join(L2, R2, "id", "fk")
        assert io_bnl.total < io_smj.total

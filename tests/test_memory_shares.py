"""Tests for fair-share memory partitioning (``FairShare``/``SubBudget``).

The sub-ledger arithmetic the service trusts: weighted shares sum to
exactly ``M``, hard floors hold under interleaved reserve/release
traffic, borrowing is bounded by other tenants' idle capacity and shuts
off under deficit, and borrow-then-reclaim round trips leave the parent
ledger balanced.
"""

import pytest

from repro.core import (
    ConfigurationError,
    FairShare,
    Machine,
    MemoryLimitExceeded,
    ShareLimitExceeded,
    SubBudget,
)


def make_fair(capacity=100, weights=(1, 1, 1)):
    machine = Machine(block_size=1, memory_blocks=capacity, num_disks=1)
    fair = FairShare(machine.budget)
    shares = [
        fair.add_share(f"t{i}", weight=w) for i, w in enumerate(weights)
    ]
    return machine, fair, shares


class TestApportionment:
    def test_equal_weights_sum_to_capacity(self):
        _, fair, shares = make_fair(100, (1, 1, 1))
        caps = [s.capacity for s in shares]
        assert sum(caps) == 100
        # Largest remainder: 34/33/33 in some order, never 33/33/33.
        assert sorted(caps) == [33, 33, 34]

    def test_weighted_shares_proportional(self):
        _, fair, shares = make_fair(120, (1, 2, 3))
        assert [s.capacity for s in shares] == [20, 40, 60]

    @pytest.mark.parametrize("weights", [
        (1,), (1, 1), (3, 2, 2), (7, 5, 3, 1), (1, 1, 1, 1, 1, 1, 1),
    ])
    def test_any_weighting_sums_exactly(self, weights):
        _, fair, shares = make_fair(97, weights)
        assert sum(s.capacity for s in shares) == 97

    def test_recompute_on_add_and_remove(self):
        machine, fair, _ = make_fair(100, (1,))
        assert fair.capacity_of("t0") == 100
        fair.add_share("late", weight=1)
        assert fair.capacity_of("t0") == 50
        assert fair.capacity_of("late") == 50
        fair.remove_share("late")
        assert fair.capacity_of("t0") == 100

    def test_duplicate_share_rejected(self):
        _, fair, _ = make_fair(100, (1,))
        with pytest.raises(ConfigurationError):
            fair.add_share("t0")

    def test_zero_weight_rejected(self):
        _, fair, _ = make_fair(100, (1,))
        with pytest.raises(ConfigurationError):
            fair.add_share("zero", weight=0)

    def test_remove_share_with_holdings_rejected(self):
        _, fair, (a,) = make_fair(100, (1,))
        a.acquire(5)
        with pytest.raises(ConfigurationError):
            fair.remove_share("t0")
        a.release(5)
        fair.remove_share("t0")


class TestHardFloor:
    def test_every_share_can_fill_its_capacity(self):
        machine, fair, shares = make_fair(100, (1, 2, 2))
        for share in shares:
            share.acquire(share.capacity)
        assert machine.budget.in_use == 100
        for share in shares:
            share.release(share.capacity)
        assert machine.budget.in_use == 0

    def test_floor_holds_under_interleaved_traffic(self):
        machine, fair, (a, b) = make_fair(64, (1, 1))
        # Interleave reserve/release on both shares; the parent ledger
        # must equal the sum of the sub-ledgers at every point, and an
        # under-share acquire must never be refused by the partition.
        for round_no in range(1, 9):
            a.acquire(round_no)
            b.acquire(32 - round_no)
            assert machine.budget.in_use == a.in_use + b.in_use
            b.release(32 - round_no)
            assert machine.budget.in_use == a.in_use + b.in_use
        assert a.in_use == 36  # 1+2+...+8
        a.release(36)
        assert machine.budget.in_use == 0

    def test_negative_amounts_rejected(self):
        _, _, (a,) = make_fair(10, (1,))
        with pytest.raises(ConfigurationError):
            a.acquire(-1)
        with pytest.raises(ConfigurationError):
            a.release(-1)

    def test_release_below_zero_rejected(self):
        _, _, (a,) = make_fair(10, (1,))
        a.acquire(3)
        with pytest.raises(ConfigurationError):
            a.release(4)
        a.release(3)

    def test_peak_tracks_high_water_mark(self):
        _, _, (a,) = make_fair(50, (1,))
        a.acquire(10)
        a.acquire(20)
        a.release(25)
        a.acquire(1)
        assert a.peak == 30
        assert a.in_use == 6


class TestBorrowing:
    def test_borrow_from_idle_capacity(self):
        machine, fair, (a, b) = make_fair(40, (1, 1))
        a.acquire(30)  # 10 over a's 20-record share, from b's idle 20
        assert a.borrowed == 10
        assert machine.budget.in_use == 30

    def test_borrow_beyond_idle_refused(self):
        _, fair, (a, b) = make_fair(40, (1, 1))
        b.acquire(15)
        # b idle = 5; a may go to 20 + 5 = 25 but not 26.
        a.acquire(25)
        with pytest.raises(ShareLimitExceeded):
            a.acquire(1)

    def test_deficit_stops_borrowing(self):
        _, fair, (a, b) = make_fair(40, (1, 1))
        fair.register_demand("t1", 5)
        with pytest.raises(ShareLimitExceeded):
            a.acquire(21)  # 1 over share while b has unmet demand
        fair.clear_demand("t1")
        a.acquire(21)
        a.release(21)

    def test_under_share_acquire_ignores_deficit(self):
        _, fair, (a, b) = make_fair(40, (1, 1))
        fair.register_demand("t1", 5)
        a.acquire(20)  # exactly a's share: the floor, always grantable
        a.release(20)

    def test_headroom_is_available_plus_borrowable(self):
        _, fair, (a, b) = make_fair(40, (1, 1))
        assert a.headroom() == 40
        b.acquire(12)
        assert a.headroom() == 20 + 8
        fair.register_demand("t1", 1)
        assert a.headroom() == 20  # borrowing shut off by the deficit
        fair.clear_demand("t1")
        b.release(12)

    def test_borrow_then_reclaim_round_trip_balances_parent(self):
        machine, fair, (a, b) = make_fair(40, (1, 1))
        a.acquire(28)  # borrows 8
        b.acquire(12)  # b's own share: still fits physically
        assert machine.budget.in_use == 40
        # Physical M is exhausted: b's next acquire must fail on the
        # machine budget, not silently evict a's borrow.
        with pytest.raises(MemoryLimitExceeded):
            b.acquire(1)
        a.release(28)
        b.acquire(8)
        assert machine.budget.in_use == 20
        b.release(20)
        assert machine.budget.in_use == 0
        assert a.in_use == 0 and b.in_use == 0

    def test_outstanding_borrow_limits_second_borrower(self):
        _, fair, (a, b, c) = make_fair(60, (1, 1, 1))
        a.acquire(30)  # borrows 10 of c's idle 20
        # b may borrow only what remains idle: c's 20 minus a's 10.
        b.acquire(30)
        with pytest.raises(ShareLimitExceeded):
            b.acquire(1)  # idle capacity exhausted by the two borrows
        # c is under its share, so the partition never refuses it — it
        # hits physical M instead (the deficit scenario admission
        # handles by registering demand and waiting).
        with pytest.raises(MemoryLimitExceeded) as excinfo:
            c.acquire(1)
        assert not isinstance(excinfo.value, ShareLimitExceeded)
        a.release(30)
        b.release(30)

    def test_reserve_context_manager_balances(self):
        machine, _, (a,) = make_fair(20, (1,))
        with a.reserve(15):
            assert a.in_use == 15
            assert machine.budget.in_use == 15
        assert a.in_use == 0
        assert machine.budget.in_use == 0

    def test_reserve_releases_on_error(self):
        machine, _, (a,) = make_fair(20, (1,))
        with pytest.raises(RuntimeError):
            with a.reserve(15):
                raise RuntimeError("boom")
        assert a.in_use == 0
        assert machine.budget.in_use == 0


class TestExports:
    def test_public_names_importable(self):
        assert FairShare is not None
        assert SubBudget is not None

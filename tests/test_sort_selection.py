"""Tests for external selection."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import EMError, FileStream, Machine, scan_io, sort_io
from repro.sort import external_median, external_select
from repro.sort.merge import external_merge_sort
from repro.workloads import distinct_ints, duplicate_heavy_ints, uniform_ints


def machine(B=16, m=8):
    return Machine(block_size=B, memory_blocks=m)


class TestExternalSelect:
    def test_selects_correct_order_statistic(self):
        m = machine()
        data = distinct_ints(2_000, seed=1)
        s = FileStream.from_records(m, data)
        ordered = sorted(data)
        for k in (0, 1, 999, 1_998, 1_999):
            assert external_select(m, s, k) == ordered[k]

    def test_median(self):
        m = machine()
        data = distinct_ints(1_001, seed=2)
        s = FileStream.from_records(m, data)
        assert external_median(m, s) == sorted(data)[500]

    def test_median_of_empty_raises(self):
        m = machine()
        with pytest.raises(EMError):
            external_median(m, FileStream(m).finalize())

    def test_out_of_range_k_raises(self):
        m = machine()
        s = FileStream.from_records(m, [1, 2, 3])
        with pytest.raises(EMError):
            external_select(m, s, 3)
        with pytest.raises(EMError):
            external_select(m, s, -1)

    def test_in_memory_case(self):
        m = machine()
        s = FileStream.from_records(m, [5, 1, 9])
        assert external_select(m, s, 1) == 5

    def test_duplicate_heavy_input(self):
        m = machine()
        data = duplicate_heavy_ints(3_000, distinct=4, seed=3)
        s = FileStream.from_records(m, data)
        ordered = sorted(data)
        for k in (0, 1_500, 2_999):
            assert external_select(m, s, k) == ordered[k]

    def test_key_function(self):
        m = machine()
        data = [(i, 1_000 - i) for i in range(500)]
        s = FileStream.from_records(m, data)
        result = external_select(m, s, 0, key=lambda r: r[1])
        assert result == (499, 501)

    def test_all_equal(self):
        m = machine()
        s = FileStream.from_records(m, [7] * 2_000)
        assert external_select(m, s, 1_234) == 7

    def test_input_stream_not_deleted(self):
        m = machine()
        s = FileStream.from_records(m, distinct_ints(2_000, seed=4))
        external_select(m, s, 100)
        assert list(s)  # still readable

    def test_no_leaks(self):
        m = machine()
        s = FileStream.from_records(m, distinct_ints(2_000, seed=5))
        before = m.disk.allocated_blocks
        external_select(m, s, 777)
        assert m.disk.allocated_blocks == before
        assert m.budget.in_use == 0

    def test_io_well_below_sorting(self):
        m = machine(B=32, m=8)
        data = uniform_ints(20_000, seed=6)
        s = FileStream.from_records(m, data)
        with m.measure() as io_select:
            external_select(m, s, 10_000)
        m2 = machine(B=32, m=8)
        s2 = FileStream.from_records(m2, data)
        with m2.measure() as io_sort:
            external_merge_sort(m2, s2)
        # Selection reads+writes a geometrically shrinking series (~4
        # scans total); sorting pays 2 scans *per pass*.
        assert io_select.total < 0.7 * io_sort.total
        # O(scan): a small constant number of passes, independent of N.
        assert io_select.total < 8 * scan_io(20_000, 32)

    @given(st.lists(st.integers(-10**6, 10**6), min_size=1, max_size=400),
           st.integers(0, 10**9))
    @settings(max_examples=30, deadline=None)
    def test_property_matches_sorted_index(self, data, k_raw):
        k = k_raw % len(data)
        m = machine(B=8, m=6)
        s = FileStream.from_records(m, data)
        assert external_select(m, s, k) == sorted(data)[k]

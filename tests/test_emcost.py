"""Tests for the EM200-series symbolic I/O-cost certification.

Three layers of coverage:

* unit tests for the term algebra and the numeric comparison grid
  (:mod:`repro.analysis.cost.expr`);
* one seeded regression per rule (EM201-EM205): a tiny synthetic
  module that must fire the rule, next to a corrected or waived twin
  that must not;
* golden inferred expressions for the sort family plus the clean-tree
  gate — ``src/repro`` must stay triaged to zero unwaived EM2xx
  findings and every ``@io_bound`` function must get an inferred cost.

Fixture paths classify the snippets as ``algorithm`` modules (the
strict tier); assertions filter by rule id so the per-line findings the
fixtures also trigger don't interfere.
"""

import textwrap
from pathlib import Path

import pytest

from repro.analysis import lint_source
from repro.analysis.cost import (
    Term,
    cost_report,
    lint_paths_cost,
    lint_sources_cost,
    render,
)
from repro.analysis.cost.expr import (
    covers,
    leading_ratio,
    normalized,
    scan,
    sort_terms,
)
from repro.analysis.flow import split_by_baseline, write_baseline

REPO_ROOT = Path(__file__).resolve().parents[1]
SRC_TREE = str(REPO_ROOT / "src" / "repro")

ALGO = "src/repro/algo/fixture.py"


def cost_findings(sources, rule=None, waived=False):
    findings = [f for f in lint_sources_cost(sources)
                if waived or not f.waived]
    if rule is not None:
        findings = [f for f in findings if f.rule == rule]
    return findings


def fixture(snippet):
    return [(ALGO, textwrap.dedent(snippet))]


# ---------------------------------------------------------------------
# Term algebra and the comparison grid
# ---------------------------------------------------------------------

class TestExpr:
    def test_normalized_merges_like_monomials(self):
        cost = normalized([scan(1.0), scan(2.0), Term(0.0, {"N": 1})])
        assert len(cost) == 1
        assert cost[0].coeff == 3.0
        assert cost[0].powers == {"N": 1, "B": -1}

    def test_sort_covers_scan_but_not_conversely(self):
        assert covers(sort_terms(), scan())
        n_logm_over_b = Term(1, {"N": 1, "B": -1, "logm": 1})
        assert not covers([scan()], n_logm_over_b)

    def test_scan_does_not_cover_quadratic(self):
        quadratic = Term(1, {"N": 2, "B": -1})
        assert not covers([scan()], quadratic)
        assert covers([quadratic], scan())

    def test_coefficients_are_stripped_for_coverage(self):
        # covers() is asymptotic: 5·N/B is within O(N/B)
        assert covers([scan(1.0)], scan(5.0))

    def test_leading_ratio_sees_constant_factor_excess(self):
        # three passes against a declared one: ratio 3 at leading order
        assert leading_ratio([scan(3.0)], [scan(1.0)]) == pytest.approx(
            3.0, rel=0.01)
        # an asymptotically vanishing extra term drives the ratio to ~1
        small = normalized(sort_terms() + [scan(1.0)])
        assert leading_ratio(small, sort_terms()) < 2.0

    def test_render_orders_by_dominance(self):
        text = render(sort_terms(2.0))
        assert text == "2·N·log_m(n)/B + 2·N/B"
        assert render([]) == "0"


# ---------------------------------------------------------------------
# EM201: inferred cost exceeds the declared bound
# ---------------------------------------------------------------------

EM201_SEED = """
from ..analysis.sanitizer import io_bound
from ..core.bounds import scan_io

@io_bound(lambda machine, n: scan_io(n, machine.B, machine.D))
def count_inversions(machine, stream):
    '''One pass: ``O(N/B)`` I/Os.'''
    total = 0
    for left in stream:
        for right in stream:
            if right < left:
                total += 1
    return total
"""


class TestEM201:
    def test_nested_scan_exceeds_declared_scan(self):
        findings = cost_findings(fixture(EM201_SEED), rule="EM201")
        assert len(findings) == 1
        finding = findings[0]
        assert finding.line == 5  # anchors on the decorator
        assert "N^2/B" in finding.message
        assert "count_inversions" in finding.message

    def test_single_scan_is_certified(self):
        src = """
        from ..analysis.sanitizer import io_bound
        from ..core.bounds import scan_io

        @io_bound(lambda machine, n: scan_io(n, machine.B, machine.D))
        def total(machine, stream):
            '''One pass: ``O(N/B)`` I/Os.'''
            total = 0
            for record in stream:
                total += record
            return total
        """
        assert cost_findings(fixture(src), rule="EM201") == []

    def test_waiver_above_decorator_suppresses(self):
        src = EM201_SEED.replace(
            "@io_bound",
            "# em: ok(EM201) all-pairs baseline, quadratic by design\n"
            "@io_bound")
        assert cost_findings(fixture(src), rule="EM201") == []
        waived = cost_findings(fixture(src), rule="EM201", waived=True)
        assert len(waived) == 1 and waived[0].waived


# ---------------------------------------------------------------------
# EM202: declared bound omits a leading-order term
# ---------------------------------------------------------------------

EM202_SEED = """
from ..analysis.sanitizer import io_bound
from ..core.bounds import scan_io
from ..core.stream import FileStream

@io_bound(lambda machine, n: %s * scan_io(n, machine.B, machine.D))
def copy_and_rescan(machine, stream):
    '''A few passes: ``O(N/B)`` I/Os.'''
    copy = FileStream(machine, name="copy")
    for record in stream:
        copy.append(record)
    copy.finalize()
    total = 0
    for record in stream:
        total += record
    for record in copy:
        total -= record
    copy.delete()
    return total
"""


class TestEM202:
    def test_undeclared_passes_fire(self):
        # the code pays 4 scan-class passes (copy write + three reads)
        # against a declared single scan: ratio 4 >= 2
        findings = cost_findings(fixture(EM202_SEED % "1"),
                                 rule="EM202")
        assert len(findings) == 1
        assert "omits a term" in findings[0].message
        assert "copy_and_rescan" in findings[0].message

    def test_honest_constant_is_certified(self):
        # declaring 3·scan leaves the excess under the 2x threshold
        assert cost_findings(fixture(EM202_SEED % "3"),
                             rule="EM202") == []


# ---------------------------------------------------------------------
# EM203: data-dependent loop-carried I/O with no clamp
# ---------------------------------------------------------------------

EM203_SEED = """
from ..analysis.sanitizer import io_bound
from ..core.bounds import scan_io

@io_bound(lambda machine, n: scan_io(n, machine.B, machine.D))
def iterate_until_stable(machine, stream):
    '''One pass per round: ``O(N/B)`` I/Os.'''
    state = 0
    while not _converged(state):
        for record in stream:
            state += record
    return state

def _converged(state):
    return state > 10
"""


class TestEM203:
    def test_unclamped_while_fires(self):
        findings = cost_findings(fixture(EM203_SEED), rule="EM203")
        assert len(findings) == 1
        assert findings[0].line == 9  # anchors on the loop
        assert "data-dependent trip count" in findings[0].message

    def test_geometric_halving_is_clamped(self):
        src = """
        from ..analysis.sanitizer import io_bound
        from ..core.bounds import scan_io

        @io_bound(lambda machine, n:
                  n.bit_length() * scan_io(n, machine.B, machine.D))
        def halve_until_small(machine, stream, n):
            '''``log2 N`` rounds of one pass each.'''
            size = n
            total = 0
            while size > 1:
                for record in stream:
                    total += record
                size //= 2
            return total
        """
        assert cost_findings(fixture(src), rule="EM203") == []

    def test_waived_site_is_suppressed_and_counted_used(self):
        src = EM203_SEED.replace(
            "    while not _converged",
            "    # em: ok(EM203) converges in O(1) rounds here\n"
            "    while not _converged")
        findings = cost_findings(fixture(src))
        assert all(f.rule != "EM203" for f in findings)
        # the waiver suppressed something, so no dead-waiver EM007
        assert all(f.rule != "EM007" for f in findings)


# ---------------------------------------------------------------------
# EM204: unbatched per-block reads where a wave is available
# ---------------------------------------------------------------------

EM204_SEED = """
from ..analysis.sanitizer import io_bound
from ..core.bounds import scan_io

@io_bound(lambda machine, n: scan_io(n, machine.B, machine.D))
def gather_blocks(machine, stream, indices):
    '''One pass over the touched blocks: ``O(N/B)`` I/Os.'''
    out = []
    for index in indices:
        out.append(machine.pool.get(stream, index))
    return out
"""


class TestEM204:
    def test_per_block_loop_fires(self):
        findings = cost_findings(fixture(EM204_SEED), rule="EM204")
        assert len(findings) == 1
        assert "get_many() wave" in findings[0].message

    def test_wave_batch_is_clean(self):
        src = """
        from ..analysis.sanitizer import io_bound
        from ..core.bounds import scan_io

        @io_bound(lambda machine, n: scan_io(n, machine.B, machine.D))
        def gather_blocks(machine, stream, indices):
            '''One wave over the touched blocks: ``O(N/B)`` I/Os.'''
            return machine.pool.get_many(stream, indices)
        """
        assert cost_findings(fixture(src), rule="EM204") == []


# ---------------------------------------------------------------------
# EM205: theory callable vs docstring bound class
# ---------------------------------------------------------------------

EM205_SEED = """
from ..analysis.sanitizer import io_bound
from ..core.bounds import scan_io

@io_bound(lambda machine, n: scan_io(n, machine.B, machine.D))
def mislabeled(machine, stream):
    '''Costs ``O(Sort(N))`` I/Os: log_{m} merge passes.'''
    total = 0
    for record in stream:
        total += record
    return total
"""


class TestEM205:
    def test_scan_theory_sort_docstring_fires(self):
        findings = cost_findings(fixture(EM205_SEED), rule="EM205")
        assert len(findings) == 1
        assert "scan-class bound" in findings[0].message
        assert "docstring" in findings[0].message

    def test_matching_docstring_is_clean(self):
        src = EM205_SEED.replace(
            "Costs ``O(Sort(N))`` I/Os: log_{m} merge passes.",
            "One pass: ``O(N/B)`` I/Os.")
        assert cost_findings(fixture(src), rule="EM205") == []

    def test_scan_and_linear_are_one_family(self):
        # "one I/O per record" reads as linear; a scan theory is the
        # same closed-form family, not a contract violation
        src = EM205_SEED.replace(
            "Costs ``O(Sort(N))`` I/Os: log_{m} merge passes.",
            "Costs one I/O per record in the worst case.")
        assert cost_findings(fixture(src), rule="EM205") == []


# ---------------------------------------------------------------------
# Waiver auditing and baseline gating over the EM2xx tier
# ---------------------------------------------------------------------

class TestWaiversAndBaseline:
    DEAD = """
    def _helper(machine, stream):
        total = 0
        # em: ok(EM203) nothing here actually fires
        for record in stream:
            total += record
        return total
    """

    def test_dead_cost_waiver_flagged_in_cost_mode(self):
        findings = cost_findings(fixture(self.DEAD), rule="EM007")
        assert len(findings) == 1
        assert "EM203" in findings[0].message

    def test_cost_waiver_not_dead_outside_cost_mode(self):
        # the per-line run doesn't evaluate EM2xx, so an EM2xx waiver
        # must not be reported as dead there
        findings = lint_source(textwrap.dedent(self.DEAD), path=ALGO)
        assert all(f.rule != "EM007" for f in findings)

    def test_baseline_round_trip_gates_cost_findings(self, tmp_path):
        findings = cost_findings(fixture(EM201_SEED))
        assert any(f.rule == "EM201" for f in findings)
        baseline = str(tmp_path / "baseline.json")
        write_baseline(findings, baseline)
        new, known = split_by_baseline(findings, baseline)
        assert new == []
        assert {f.rule for f in known} >= {"EM201"}

    def test_new_cost_finding_stays_open(self, tmp_path):
        baseline = str(tmp_path / "baseline.json")
        write_baseline(cost_findings(fixture(EM201_SEED)), baseline)
        new, _ = split_by_baseline(
            cost_findings(fixture(EM203_SEED)), baseline)
        assert {f.rule for f in new} >= {"EM203"}


# ---------------------------------------------------------------------
# Golden expressions and the clean-tree gate
# ---------------------------------------------------------------------

@pytest.fixture(scope="module")
def tree_report():
    return cost_report([SRC_TREE])


@pytest.fixture(scope="module")
def tree_findings():
    return lint_paths_cost([SRC_TREE], with_flow=True)


class TestGoldenExpressions:
    def test_sort_family(self, tree_report):
        golden = {
            # load-sort run formation: read + write each memoryload
            "runs.form_runs_load_sort": "2·N/B",
            # snow-plow variant: read + write + rewrite of spilled tail
            "runs.form_runs_replacement_selection": "3·N/B",
            # merge phase only (run formation is a separate callee)
            "merge.external_merge_sort": "N·log_m(n)/B",
            # one read pass per distribution level (the bucket writes
            # flow through BlockBuilder sinks charged at their streams)
            "distribution.distribution_sort": "2·N·log_m(n)/B",
        }
        for name, expression in golden.items():
            assert name in tree_report, name
            assert tree_report[name]["inferred"] == expression, name

    def test_sort_family_is_certified(self, tree_report):
        for name in ("runs.form_runs_load_sort",
                     "merge.external_merge_sort",
                     "distribution.distribution_sort",
                     "selection.external_select"):
            assert tree_report[name]["certified"] is True, name

    def test_every_io_bound_function_gets_a_cost(self, tree_report):
        assert len(tree_report) >= 45
        for name, entry in tree_report.items():
            assert entry["inferred"], name
            assert entry["inferred"] != "0", name

    def test_declared_bounds_are_interpretable(self, tree_report):
        undeclared = [name for name, entry in tree_report.items()
                      if entry["declared"] is None]
        assert undeclared == [], undeclared


class TestCleanTree:
    def test_src_tree_has_no_unwaived_cost_findings(self, tree_findings):
        open_findings = [f for f in tree_findings if not f.waived]
        assert open_findings == [], [
            f"{f.path}:{f.line} {f.rule} {f.message}"
            for f in open_findings]

    def test_waivers_carry_justifications(self, tree_findings):
        # every waived EM2xx finding is covered by a waiver comment in
        # the source; spot-check the deliberate quadratic fallbacks
        waived = {(Path(f.path).name, f.rule)
                  for f in tree_findings if f.waived}
        assert ("dominance.py", "EM201") in waived
        assert ("joins.py", "EM201") in waived

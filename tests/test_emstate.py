"""Tests for the EM300-series typestate analysis.

Each fixture is a tiny synthetic module fed through
:func:`lint_sources_state`; paths are chosen so the modules classify as
algorithm code (the strict tier).  Every rule gets one seeded positive
and a clean (or waived) twin, mirroring the layout of
``test_emflow.py``.  Assertions filter by rule id so the EM001-series
static findings the fixtures also trigger don't interfere.
"""

import json

from repro.analysis.flow.sarif import SARIF_VERSION, to_sarif
from repro.analysis.rules import RULES, STATE_RULES
from repro.analysis.state import lint_sources_state


def state_findings(sources, rule=None, waived=False):
    findings = [f for f in lint_sources_state(sources)
                if f.waived == waived]
    if rule is not None:
        findings = [f for f in findings if f.rule == rule]
    return findings


ALGO = "src/repro/algo/fixture.py"


# ---------------------------------------------------------------------
# EM301: pins and reservations not released on some path
# ---------------------------------------------------------------------

class TestPinLeaks:
    def test_pin_leaked_on_exception_path(self):
        src = '''
def _stage(machine, scheduler, blocks):
    scheduler.try_pin(machine.num_disks)
    payload = _fetch(blocks)
    scheduler.unpin(machine.num_disks)
    return payload
'''
        findings = state_findings([(ALGO, src)], rule="EM301")
        assert len(findings) == 1
        assert findings[0].line == 3
        assert "unpin" in findings[0].message
        assert findings[0].trace

    def test_unpin_in_finally_is_clean(self):
        src = '''
def _stage(machine, scheduler, blocks):
    scheduler.try_pin(machine.num_disks)
    try:
        return _fetch(blocks)
    finally:
        scheduler.unpin(machine.num_disks)
'''
        assert state_findings([(ALGO, src)], rule="EM301") == []

    def test_guarded_unpin_in_finally_is_trusted(self):
        # The read_ahead pattern: the finally's release sits behind a
        # dynamic guard mirroring the pin count.  Trusted by design.
        src = '''
def _prefetch(machine, scheduler, blocks):
    staged = []
    try:
        scheduler.try_pin(machine.num_disks)
        staged.extend(_fetch(blocks))
        for payload in staged:
            yield payload
    finally:
        if staged:
            scheduler.unpin(machine.num_disks)
'''
        assert state_findings([(ALGO, src)], rule="EM301") == []

    def test_class_holder_release_is_clean(self):
        # WriteBehind's window: put() pins, flush() — another method of
        # the same class — unpins the same self-rooted receiver.
        src = '''
class Window:
    def put(self, block_id, records):
        self.scheduler.try_pin()
        self.pending[block_id] = list(records)

    def flush(self):
        self.scheduler.unpin(len(self.pending))
        self.pending.clear()
'''
        assert state_findings([(ALGO, src)], rule="EM301") == []

    def test_unpaired_pin_reported(self):
        src = '''
def _grab(machine, scheduler):
    scheduler.try_pin(machine.num_disks)
    return True
'''
        findings = state_findings([(ALGO, src)], rule="EM301")
        assert len(findings) == 1
        assert "never paired" in findings[0].message


class TestWriterReserve:
    def test_reservation_without_finalize_on_exception(self):
        src = '''
def _emit(machine, records):
    out = FileStream(machine, name="emit")
    out.reserve_writer()
    for record in records:
        out.append(record)
    return out.finalize()
'''
        findings = state_findings([(ALGO, src)], rule="EM301")
        assert any("reserve_writer" in f.message
                   or "writer reservation" in f.message
                   for f in findings)

    def test_catchall_delete_and_reraise_is_clean(self):
        # The merge_streams pattern: a cleanup-and-reraise handler
        # covers the exceptional exit even though the CFG keeps an
        # unconditional propagate edge.
        src = '''
def _emit(machine, records):
    out = FileStream(machine, name="emit")
    try:
        out.reserve_writer()
        for record in records:
            out.append(record)
        return out.finalize()
    except BaseException:
        out.delete()
        raise
'''
        assert state_findings([(ALGO, src)], rule="EM301") == []


class TestReaderLeaks:
    def test_reader_open_across_handler(self):
        src = '''
def _drain(machine, stream: FileStream):
    reader = iter(stream)
    total = 0
    try:
        for record in reader:
            total += _weigh(record)
    except ValueError:
        total = -1
    return total
'''
        findings = state_findings([(ALGO, src)], rule="EM301")
        assert len(findings) == 1
        assert "closing" in findings[0].message

    def test_reader_closed_in_finally_is_clean(self):
        src = '''
def _drain(machine, stream: FileStream):
    reader = iter(stream)
    total = 0
    try:
        for record in reader:
            total += _weigh(record)
    except ValueError:
        total = -1
    finally:
        reader.close()
    return total
'''
        assert state_findings([(ALGO, src)], rule="EM301") == []

    def test_contextlib_closing_is_clean(self):
        src = '''
from contextlib import closing


def _drain(machine, stream: FileStream):
    total = 0
    with closing(iter(stream)) as reader:
        try:
            for record in reader:
                total += _weigh(record)
        except ValueError:
            total = -1
    return total
'''
        assert state_findings([(ALGO, src)], rule="EM301") == []


# ---------------------------------------------------------------------
# EM302: handles without a guaranteed close
# ---------------------------------------------------------------------

class TestUnclosedHandles:
    def test_handle_without_close_on_return_path(self):
        src = '''
def _copy(machine, payloads):
    sink = BlockFile(machine, 4, name="copy")
    for index, payload in enumerate(payloads):
        sink.write_block(index, payload)
    return len(payloads)
'''
        findings = state_findings([(ALGO, src)], rule="EM302")
        assert len(findings) == 1
        assert "with BlockFile" in findings[0].message

    def test_with_statement_is_clean(self):
        src = '''
def _copy(machine, payloads):
    with BlockFile(machine, 4, name="copy") as sink:
        for index, payload in enumerate(payloads):
            sink.write_block(index, payload)
    return len(payloads)
'''
        assert state_findings([(ALGO, src)], rule="EM302") == []

    def test_returned_handle_escapes_ownership(self):
        src = '''
def _build(machine, payloads):
    sink = BlockFile(machine, 4, name="build")
    for index, payload in enumerate(payloads):
        sink.write_block(index, payload)
    return sink
'''
        assert state_findings([(ALGO, src)], rule="EM302") == []

    def test_bare_with_over_constructed_handle(self):
        src = '''
def _pack(machine, records):
    spill = ExternalStack(machine)
    with spill:
        for record in records:
            spill.push(record)
'''
        findings = state_findings([(ALGO, src)], rule="EM302")
        assert len(findings) == 1
        assert "merge into" in findings[0].message

    def test_merged_with_form_is_clean(self):
        src = '''
def _pack(machine, records):
    with ExternalStack(machine) as spill:
        for record in records:
            spill.push(record)
'''
        assert state_findings([(ALGO, src)], rule="EM302") == []


# ---------------------------------------------------------------------
# EM303: use-after-release and repeatable release
# ---------------------------------------------------------------------

class TestUseAfterRelease:
    def test_pop_after_close(self):
        src = '''
def _reuse(machine, records):
    spill = ExternalStack(machine)
    for record in records:
        spill.push(record)
    spill.close()
    return spill.pop()
'''
        findings = state_findings([(ALGO, src)], rule="EM303")
        assert len(findings) == 1
        assert "use-after-release" in findings[0].message

    def test_use_before_close_is_clean(self):
        src = '''
def _consume(machine, records):
    spill = ExternalStack(machine)
    for record in records:
        spill.push(record)
    top = spill.pop()
    spill.close()
    return top
'''
        assert state_findings([(ALGO, src)], rule="EM303") == []

    def test_loop_reconstruction_is_not_use_after_release(self):
        # The external_select shape: the handle is rebound at the top
        # of each iteration, so a release late in iteration k does not
        # poison the use early in iteration k+1.
        src = '''
def _rounds(machine, records):
    while records:
        spill = ExternalStack(machine)
        for record in records:
            spill.push(record)
        records = _shrink(spill.pop(), records)
        spill.close()
    return records
'''
        assert state_findings([(ALGO, src)], rule="EM303") == []


class TestRepeatableRelease:
    def test_release_before_idempotence_flag(self):
        src = '''
class Spill:
    def close(self):
        if self._closed:
            return
        self.machine.budget.release(self.capacity)
        self._flush_runs()
        self._closed = True
'''
        findings = state_findings([(ALGO, src)], rule="EM303")
        assert len(findings) == 1
        assert "can repeat" in findings[0].message

    def test_flag_first_release_in_finally_is_clean(self):
        src = '''
class Spill:
    def close(self):
        if self._closed:
            return
        self._closed = True
        try:
            self._flush_runs()
        finally:
            self.machine.budget.release(self.capacity)
'''
        assert state_findings([(ALGO, src)], rule="EM303") == []


# ---------------------------------------------------------------------
# EM304: raw disk I/O bypassing the runtime
# ---------------------------------------------------------------------

class TestRawIO:
    def test_raw_disk_write_flagged(self):
        src = '''
def _bulk_load(machine, payloads):
    for payload in payloads:
        block_id = machine.disk.allocate()
        machine.disk.write(block_id, payload)
'''
        findings = state_findings([(ALGO, src)], rule="EM304")
        assert len(findings) == 1
        assert "machine.runtime" in findings[0].message

    def test_runtime_routed_write_is_clean(self):
        src = '''
def _bulk_load(machine, payloads):
    for payload in payloads:
        block_id = machine.disk.allocate()
        machine.runtime.writer.put(block_id, payload)
'''
        assert state_findings([(ALGO, src)], rule="EM304") == []

    def test_runtime_internals_are_whitelisted(self):
        src = '''
def _drain(machine, pending):
    for block_id, payload in pending:
        machine.disk.write(block_id, payload)
'''
        path = "src/repro/runtime/fixture.py"
        assert state_findings([(path, src)], rule="EM304") == []

    def test_waiver_suppresses_finding(self):
        src = '''
def _scrub(machine, block_ids):
    for block_id in block_ids:
        # em: ok(EM304) deliberate raw read: the scrubber verifies
        # the device copy, bypassing the cache on purpose
        machine.disk.read(block_id)
'''
        assert state_findings([(ALGO, src)], rule="EM304") == []
        waived = state_findings([(ALGO, src)], rule="EM304",
                                waived=True)
        assert len(waived) == 1
        assert waived[0].waiver_reason


# ---------------------------------------------------------------------
# EM305: checkpoint-protocol violations
# ---------------------------------------------------------------------

class TestManifestProtocol:
    def test_adopt_of_unverified_blocks(self):
        src = '''
def _recover(machine, block_ids):
    return FileStream.adopt(machine, block_ids, name="recovered")
'''
        findings = state_findings([(ALGO, src)], rule="EM305")
        assert len(findings) == 1
        assert "adopt" in findings[0].message

    def test_adopt_of_manifest_described_blocks_is_clean(self):
        src = '''
def _recover(machine, manifest):
    block_ids = manifest.result
    return FileStream.adopt(machine, block_ids, name="recovered")
'''
        assert state_findings([(ALGO, src)], rule="EM305") == []

    def test_adopt_then_delete_reclaims_stale_blocks(self):
        src = '''
def _reclaim(machine, stale_ids):
    FileStream.adopt(machine, stale_ids, name="stale").delete()
'''
        assert state_findings([(ALGO, src)], rule="EM305") == []

    def test_write_after_result_commit(self):
        src = '''
def _finish(machine, manifest, output):
    manifest.commit_result([1, 2])
    output.append_block([0])
'''
        findings = state_findings([(ALGO, src)], rule="EM305")
        assert len(findings) == 1
        assert "after the result commit" in findings[0].message


# ---------------------------------------------------------------------
# EM306: durability points with write-behind unflushed
# ---------------------------------------------------------------------

class TestDurability:
    def test_commit_reachable_with_unflushed_write(self):
        src = '''
def _checkpoint(machine, manifest, output):
    output.append_block([0])
    manifest.commit_pass(0, [1])
'''
        findings = state_findings([(ALGO, src)], rule="EM306")
        assert len(findings) == 1
        assert "durability point" in findings[0].message

    def test_finalize_between_write_and_commit_is_clean(self):
        src = '''
def _checkpoint(machine, manifest, output):
    output.append_block([0])
    output.finalize()
    manifest.commit_pass(0, [1])
'''
        assert state_findings([(ALGO, src)], rule="EM306") == []
        # ...and writing before a later commit_result is equally fine.
        assert state_findings([(ALGO, src)], rule="EM305") == []


# ---------------------------------------------------------------------
# SARIF output
# ---------------------------------------------------------------------

LEAKY_PIN = '''
def _stage(machine, scheduler, blocks):
    scheduler.try_pin(machine.num_disks)
    payload = _fetch(blocks)
    scheduler.unpin(machine.num_disks)
    return payload
'''

WAIVED_RAW = '''
def _scrub(machine, block_ids):
    for block_id in block_ids:
        # em: ok(EM304) scrubber verifies the device copy directly
        machine.disk.read(block_id)
'''


class TestSarif:
    def sarif_log(self):
        findings = lint_sources_state([
            (ALGO, LEAKY_PIN),
            ("src/repro/algo/waived.py", WAIVED_RAW),
        ])
        rules = dict(RULES)
        rules.update(STATE_RULES)
        return findings, to_sarif(findings, rules)

    def test_log_is_valid_sarif_2_1_0(self):
        findings, log = self.sarif_log()
        log = json.loads(json.dumps(log))
        assert log["version"] == SARIF_VERSION == "2.1.0"
        run = log["runs"][0]
        rule_ids = {rule["id"] for rule in run["tool"]["driver"]["rules"]}
        assert {"EM301", "EM302", "EM303", "EM304", "EM305",
                "EM306"} <= rule_ids
        assert len(run["results"]) == len(findings)
        for result in run["results"]:
            assert result["ruleId"] in rule_ids
            assert result["message"]["text"]
            location = result["locations"][0]["physicalLocation"]
            assert location["artifactLocation"]["uri"].endswith(".py")
            assert "emlintFingerprint/v1" in result["partialFingerprints"]

    def test_typestate_trace_becomes_code_flow(self):
        findings, log = self.sarif_log()
        results = log["runs"][0]["results"]
        flows = [r for r in results if r["ruleId"] == "EM301"
                 and r.get("codeFlows")]
        assert flows
        locations = flows[0]["codeFlows"][0]["threadFlows"][0]["locations"]
        assert locations
        for loc in locations:
            region = loc["location"]["physicalLocation"]["region"]
            assert region["startLine"] >= 1

    def test_waived_raw_io_is_suppressed(self):
        findings, log = self.sarif_log()
        results = log["runs"][0]["results"]
        suppressed = [r for r in results if r.get("suppressions")]
        assert any(r["ruleId"] == "EM304" for r in suppressed)
        for result in suppressed:
            assert result["suppressions"][0]["kind"] == "inSource"


# ---------------------------------------------------------------------
# Baseline workflow
# ---------------------------------------------------------------------

class TestBaseline:
    def test_state_findings_round_trip(self, tmp_path):
        from repro.analysis.flow.baseline import (
            split_by_baseline, write_baseline,
        )

        findings = state_findings([(ALGO, LEAKY_PIN)], rule="EM301")
        assert findings
        baseline = tmp_path / "baseline.json"
        write_baseline(findings, str(baseline))
        new, known = split_by_baseline(findings, str(baseline))
        assert new == []
        assert len(known) == len(findings)

    def test_new_state_findings_stay_open(self, tmp_path):
        from repro.analysis.flow.baseline import (
            split_by_baseline, write_baseline,
        )

        old = state_findings([(ALGO, LEAKY_PIN)])
        baseline = tmp_path / "baseline.json"
        write_baseline(old, str(baseline))
        grown = LEAKY_PIN + '''

def _later(machine, manifest, output):
    output.append_block([0])
    manifest.commit_pass(0, [1])
'''
        new, known = split_by_baseline(
            state_findings([(ALGO, grown)]), str(baseline)
        )
        assert known  # the old pin leak is still filtered
        assert any(f.rule == "EM306" for f in new)


# ---------------------------------------------------------------------
# Repository gate
# ---------------------------------------------------------------------

class TestRepositoryIsClean:
    def test_src_tree_has_no_unwaived_typestate_findings(self):
        import pathlib

        from repro.analysis.state import lint_paths_state

        root = pathlib.Path(__file__).resolve().parent.parent
        paths = sorted(
            str(p) for p in (root / "src" / "repro").rglob("*.py")
        )
        open_findings = [
            f for f in lint_paths_state(paths) if not f.waived
        ]
        assert open_findings == []

    def test_every_state_waiver_is_documented(self):
        import pathlib

        from repro.analysis.state import lint_paths_state

        root = pathlib.Path(__file__).resolve().parent.parent
        paths = sorted(
            str(p) for p in (root / "src" / "repro").rglob("*.py")
        )
        for finding in lint_paths_state(paths):
            if finding.waived and finding.rule in STATE_RULES:
                assert finding.waiver_reason, (
                    f"{finding.path}:{finding.line} waives "
                    f"{finding.rule} without a reason"
                )

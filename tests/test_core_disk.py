"""Unit tests for the simulated block devices."""

import pytest

from repro.core import (
    BlockNotAllocatedError,
    BlockOverflowError,
    ConfigurationError,
    DiskArray,
    SimulatedDisk,
)


class TestSimulatedDisk:
    def test_allocate_returns_distinct_ids(self):
        disk = SimulatedDisk(block_capacity=4)
        ids = [disk.allocate() for _ in range(10)]
        assert len(set(ids)) == 10

    def test_write_then_read_round_trips(self):
        disk = SimulatedDisk(block_capacity=4)
        bid = disk.allocate()
        disk.write(bid, [1, 2, 3])
        assert disk.read(bid) == [1, 2, 3]

    def test_read_counts_one_io(self):
        disk = SimulatedDisk(block_capacity=4)
        bid = disk.allocate()
        disk.write(bid, [1])
        before = disk.counter.reads
        disk.read(bid)
        assert disk.counter.reads == before + 1

    def test_write_counts_one_io(self):
        disk = SimulatedDisk(block_capacity=4)
        bid = disk.allocate()
        before = disk.counter.writes
        disk.write(bid, [1])
        assert disk.counter.writes == before + 1

    def test_allocation_is_free_of_io(self):
        disk = SimulatedDisk(block_capacity=4)
        for _ in range(100):
            disk.allocate()
        assert disk.counter.reads == 0
        assert disk.counter.writes == 0

    def test_read_returns_copy(self):
        disk = SimulatedDisk(block_capacity=4)
        bid = disk.allocate()
        disk.write(bid, [1, 2])
        payload = disk.read(bid)
        payload.append(99)
        assert disk.read(bid) == [1, 2]

    def test_overflow_write_rejected(self):
        disk = SimulatedDisk(block_capacity=2)
        bid = disk.allocate()
        with pytest.raises(BlockOverflowError):
            disk.write(bid, [1, 2, 3])

    def test_read_unallocated_raises(self):
        disk = SimulatedDisk(block_capacity=2)
        with pytest.raises(BlockNotAllocatedError):
            disk.read(42)

    def test_write_unallocated_raises(self):
        disk = SimulatedDisk(block_capacity=2)
        with pytest.raises(BlockNotAllocatedError):
            disk.write(42, [1])

    def test_free_releases_block(self):
        disk = SimulatedDisk(block_capacity=2)
        bid = disk.allocate()
        disk.free(bid)
        assert not disk.is_allocated(bid)
        with pytest.raises(BlockNotAllocatedError):
            disk.read(bid)

    def test_double_free_raises(self):
        disk = SimulatedDisk(block_capacity=2)
        bid = disk.allocate()
        disk.free(bid)
        with pytest.raises(BlockNotAllocatedError):
            disk.free(bid)

    def test_high_water_mark_tracks_peak(self):
        disk = SimulatedDisk(block_capacity=2)
        ids = [disk.allocate() for _ in range(5)]
        for bid in ids:
            disk.free(bid)
        disk.allocate()
        assert disk.high_water_blocks == 5
        assert disk.allocated_blocks == 1

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ConfigurationError):
            SimulatedDisk(block_capacity=0)

    def test_peek_costs_no_io(self):
        disk = SimulatedDisk(block_capacity=4)
        bid = disk.allocate()
        disk.write(bid, [7])
        writes, reads = disk.counter.writes, disk.counter.reads
        assert disk.peek(bid) == [7]
        assert (disk.counter.writes, disk.counter.reads) == (writes, reads)


class TestDiskArray:
    def test_single_disk_matches_simulated_disk_semantics(self):
        array = DiskArray(block_capacity=4, num_disks=1)
        bid = array.allocate()
        array.write(bid, [1, 2])
        assert array.read(bid) == [1, 2]
        assert array.counter.reads == 1
        assert array.counter.read_steps == 1

    def test_round_robin_allocation_spreads_disks(self):
        array = DiskArray(block_capacity=4, num_disks=3)
        disks = [array.disk_of(array.allocate()) for _ in range(6)]
        assert disks == [0, 1, 2, 0, 1, 2]

    def test_explicit_disk_allocation(self):
        array = DiskArray(block_capacity=4, num_disks=3)
        bid = array.allocate(disk=2)
        assert array.disk_of(bid) == 2

    def test_allocation_to_bad_disk_rejected(self):
        array = DiskArray(block_capacity=4, num_disks=2)
        with pytest.raises(ConfigurationError):
            array.allocate(disk=5)

    def test_parallel_read_counts_max_per_disk_steps(self):
        array = DiskArray(block_capacity=4, num_disks=4)
        ids = [array.allocate(disk=i) for i in range(4)]
        for bid in ids:
            array.write(bid, [bid])
        array.counter.reset()
        payloads = array.parallel_read(ids)
        assert payloads == [[bid] for bid in ids]
        assert array.counter.reads == 4
        assert array.counter.read_steps == 1  # one block per disk

    def test_parallel_read_same_disk_is_serial(self):
        array = DiskArray(block_capacity=4, num_disks=4)
        ids = [array.allocate(disk=0) for _ in range(3)]
        for bid in ids:
            array.write(bid, [])
        array.counter.reset()
        array.parallel_read(ids)
        assert array.counter.read_steps == 3

    def test_parallel_write_counts_steps(self):
        array = DiskArray(block_capacity=4, num_disks=2)
        a = array.allocate(disk=0)
        b = array.allocate(disk=1)
        c = array.allocate(disk=1)
        array.counter.reset()
        array.parallel_write([(a, [1]), (b, [2]), (c, [3])])
        assert array.counter.writes == 3
        assert array.counter.write_steps == 2  # disk 1 holds two blocks

    def test_parallel_write_atomicity_on_overflow(self):
        """If any write in a batch is invalid, no block is modified."""
        array = DiskArray(block_capacity=2, num_disks=2)
        a = array.allocate(disk=0)
        b = array.allocate(disk=1)
        array.write(a, [0])
        with pytest.raises(BlockOverflowError):
            array.parallel_write([(a, [1]), (b, [1, 2, 3])])
        assert array.peek(a) == [0]

    def test_empty_parallel_batches_cost_nothing(self):
        array = DiskArray(block_capacity=4, num_disks=2)
        array.parallel_read([])
        array.parallel_write([])
        assert array.counter.read_steps == 0
        assert array.counter.write_steps == 0

    def test_free_then_access_raises(self):
        array = DiskArray(block_capacity=4, num_disks=2)
        bid = array.allocate()
        array.free(bid)
        with pytest.raises(BlockNotAllocatedError):
            array.disk_of(bid)

    def test_invalid_disk_count_rejected(self):
        with pytest.raises(ConfigurationError):
            DiskArray(block_capacity=4, num_disks=0)

"""Tests for permuting."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ConfigurationError, FileStream, Machine, sort_io
from repro.permute import (
    bit_reversal_permutation,
    permute,
    permute_by_sort,
    permute_naive,
)
from repro.workloads import distinct_ints


def machine(B=16, m=8):
    return Machine(block_size=B, memory_blocks=m)


def apply_reference(data, targets):
    out = [None] * len(data)
    for i, t in enumerate(targets):
        out[t] = data[i]
    return out


class TestCorrectness:
    @pytest.mark.parametrize("fn", [permute_naive, permute_by_sort, permute])
    def test_random_permutation(self, fn):
        m = machine()
        data = [f"r{i}" for i in range(500)]
        targets = distinct_ints(500, seed=3)
        out = fn(m, FileStream.from_records(m, data), targets)
        assert list(out) == apply_reference(data, targets)

    @pytest.mark.parametrize("fn", [permute_naive, permute_by_sort])
    def test_identity_permutation(self, fn):
        m = machine()
        data = list(range(200))
        out = fn(m, FileStream.from_records(m, data), list(range(200)))
        assert list(out) == data

    @pytest.mark.parametrize("fn", [permute_naive, permute_by_sort])
    def test_reversal_permutation(self, fn):
        m = machine()
        data = list(range(200))
        targets = list(range(199, -1, -1))
        out = fn(m, FileStream.from_records(m, data), targets)
        assert list(out) == list(reversed(data))

    @pytest.mark.parametrize("fn", [permute_naive, permute_by_sort, permute])
    def test_empty(self, fn):
        m = machine()
        out = fn(m, FileStream(m).finalize(), [])
        assert list(out) == []

    def test_length_mismatch_rejected(self):
        m = machine()
        s = FileStream.from_records(m, [1, 2, 3])
        with pytest.raises(ConfigurationError):
            permute(m, s, [0, 1])

    def test_non_permutation_rejected(self):
        m = machine()
        s = FileStream.from_records(m, [1, 2, 3])
        with pytest.raises(ConfigurationError):
            permute(m, s, [0, 0, 1])

    @given(st.integers(1, 300), st.integers(0, 2**30))
    @settings(max_examples=25, deadline=None)
    def test_property_both_strategies_agree(self, n, seed):
        m = machine(B=8, m=4)
        data = list(range(n))
        targets = distinct_ints(n, seed=seed)
        s = FileStream.from_records(m, data)
        naive = list(permute_naive(m, s, targets))
        sorted_ = list(permute_by_sort(m, s, targets))
        assert naive == sorted_ == apply_reference(data, targets)


class TestIOBehaviour:
    def test_naive_costs_about_2n_on_random_permutation(self):
        m = machine(B=16, m=4)
        n = 2000
        s = FileStream.from_records(m, range(n))
        targets = distinct_ints(n, seed=5)
        with m.measure() as io:
            permute_naive(m, s, targets)
        assert io.total > n  # ~1 read + ~1 write per record
        assert io.total < 3 * n

    def test_naive_degrades_to_scan_on_identity(self):
        m = machine(B=16, m=4)
        n = 2000
        s = FileStream.from_records(m, range(n))
        with m.measure() as io:
            permute_naive(m, s, list(range(n)))
        # coalesced writes: ~3 I/Os per block, far below 2 per record
        assert io.total < 6 * (n // m.B)

    def test_sort_based_beats_naive_for_large_blocks(self):
        m1 = machine(B=64, m=8)
        n = 4000
        targets = distinct_ints(n, seed=6)
        s1 = FileStream.from_records(m1, range(n))
        with m1.measure() as io_naive:
            permute_naive(m1, s1, targets)
        m2 = machine(B=64, m=8)
        s2 = FileStream.from_records(m2, range(n))
        with m2.measure() as io_sort:
            permute_by_sort(m2, s2, targets)
        assert io_sort.total < io_naive.total

    def test_dispatcher_picks_cheaper_branch(self):
        # Large blocks: sorting wins and the dispatcher must match it.
        m = machine(B=64, m=8)
        n = 4000
        targets = distinct_ints(n, seed=7)
        s = FileStream.from_records(m, range(n))
        with m.measure() as io:
            permute(m, s, targets)
        assert io.total < 2 * n


class TestBitReversal:
    def test_is_a_permutation(self):
        targets = bit_reversal_permutation(6)
        assert sorted(targets) == list(range(64))

    def test_is_an_involution(self):
        targets = bit_reversal_permutation(5)
        assert all(targets[targets[i]] == i for i in range(32))

    def test_known_values(self):
        assert bit_reversal_permutation(3) == [0, 4, 2, 6, 1, 5, 3, 7]

    def test_permuting_by_bit_reversal(self):
        m = machine(B=8, m=4)
        data = list(range(64))
        targets = bit_reversal_permutation(6)
        out = permute(m, FileStream.from_records(m, data), targets)
        assert list(out) == apply_reference(data, targets)

"""Unit tests for the buffer pool and eviction policies."""

import pytest

from repro.core import (
    BufferPool,
    ClockPolicy,
    ConfigurationError,
    FIFOPolicy,
    LRUPolicy,
    MinPolicy,
    MRUPolicy,
    PoolError,
    SimulatedDisk,
)


def make_disk(num_blocks=16, capacity=4):
    disk = SimulatedDisk(block_capacity=capacity)
    ids = []
    for i in range(num_blocks):
        bid = disk.allocate()
        disk.write(bid, [i])
        ids.append(bid)
    disk.counter.reset()
    return disk, ids


class TestBufferPoolBasics:
    def test_miss_then_hit(self):
        disk, ids = make_disk()
        pool = BufferPool(disk, capacity=4)
        pool.get(ids[0])
        pool.get(ids[0])
        assert pool.misses == 1
        assert pool.hits == 1
        assert disk.counter.reads == 1

    def test_capacity_enforced_by_eviction(self):
        disk, ids = make_disk()
        pool = BufferPool(disk, capacity=2)
        for bid in ids[:5]:
            pool.get(bid)
        assert pool.resident_count == 2
        assert pool.evictions == 3

    def test_dirty_block_flushed_on_eviction(self):
        disk, ids = make_disk()
        pool = BufferPool(disk, capacity=1)
        frame = pool.get(ids[0])
        frame.append(99)
        pool.mark_dirty(ids[0])
        pool.get(ids[1])  # evicts ids[0]
        assert disk.peek(ids[0]) == [0, 99]
        assert disk.counter.writes == 1

    def test_clean_eviction_costs_no_write(self):
        disk, ids = make_disk()
        pool = BufferPool(disk, capacity=1)
        pool.get(ids[0])
        pool.get(ids[1])
        assert disk.counter.writes == 0

    def test_put_new_skips_read(self):
        disk, _ = make_disk()
        bid = disk.allocate()
        pool = BufferPool(disk, capacity=2)
        disk.counter.reset()
        frame = pool.put_new(bid, [5])
        assert frame == [5]
        assert disk.counter.reads == 0
        pool.flush(bid)
        assert disk.peek(bid) == [5]

    def test_put_new_resident_block_rejected(self):
        disk, ids = make_disk()
        pool = BufferPool(disk, capacity=2)
        pool.get(ids[0])
        with pytest.raises(PoolError):
            pool.put_new(ids[0])

    def test_flush_all_writes_every_dirty_block(self):
        disk, ids = make_disk()
        pool = BufferPool(disk, capacity=4)
        for bid in ids[:3]:
            frame = pool.get(bid)
            frame.append(1)
            pool.mark_dirty(bid)
        pool.flush_all()
        assert disk.counter.writes == 3
        pool.flush_all()  # idempotent
        assert disk.counter.writes == 3

    def test_drop_flushes_and_releases_frame(self):
        disk, ids = make_disk()
        pool = BufferPool(disk, capacity=2)
        frame = pool.get(ids[0])
        frame.append(7)
        pool.mark_dirty(ids[0])
        pool.drop(ids[0])
        assert not pool.is_resident(ids[0])
        assert disk.peek(ids[0]) == [0, 7]

    def test_invalidate_discards_without_flush(self):
        disk, ids = make_disk()
        pool = BufferPool(disk, capacity=2)
        frame = pool.get(ids[0])
        frame.append(7)
        pool.mark_dirty(ids[0])
        pool.invalidate(ids[0])
        assert disk.counter.writes == 0
        assert disk.peek(ids[0]) == [0]

    def test_mark_dirty_nonresident_raises(self):
        disk, ids = make_disk()
        pool = BufferPool(disk, capacity=2)
        with pytest.raises(PoolError):
            pool.mark_dirty(ids[0])

    def test_zero_capacity_rejected(self):
        disk, _ = make_disk()
        with pytest.raises(ConfigurationError):
            BufferPool(disk, capacity=0)


class TestPinning:
    def test_pinned_block_survives_eviction_pressure(self):
        disk, ids = make_disk()
        pool = BufferPool(disk, capacity=2)
        pool.get(ids[0])
        pool.pin(ids[0])
        for bid in ids[1:6]:
            pool.get(bid)
        assert pool.is_resident(ids[0])

    def test_all_pinned_raises(self):
        disk, ids = make_disk()
        pool = BufferPool(disk, capacity=2)
        pool.get(ids[0])
        pool.pin(ids[0])
        pool.get(ids[1])
        pool.pin(ids[1])
        with pytest.raises(PoolError):
            pool.get(ids[2])

    def test_unpin_restores_evictability(self):
        disk, ids = make_disk()
        pool = BufferPool(disk, capacity=1)
        pool.get(ids[0])
        pool.pin(ids[0])
        pool.unpin(ids[0])
        pool.get(ids[1])
        assert not pool.is_resident(ids[0])

    def test_unpin_unpinned_raises(self):
        disk, ids = make_disk()
        pool = BufferPool(disk, capacity=1)
        pool.get(ids[0])
        with pytest.raises(PoolError):
            pool.unpin(ids[0])

    def test_nested_pins(self):
        disk, ids = make_disk()
        pool = BufferPool(disk, capacity=1)
        pool.get(ids[0])
        pool.pin(ids[0])
        pool.pin(ids[0])
        pool.unpin(ids[0])
        with pytest.raises(PoolError):
            pool.get(ids[1])  # still pinned once
        pool.unpin(ids[0])
        pool.get(ids[1])


class TestEvictionPolicies:
    def run_trace(self, policy, trace, capacity, disk, ids):
        pool = BufferPool(disk, capacity=capacity, policy=policy)
        for i in trace:
            pool.get(ids[i])
        return pool

    def test_lru_evicts_least_recent(self):
        disk, ids = make_disk()
        pool = self.run_trace(LRUPolicy(), [0, 1, 0, 2], 2, disk, ids)
        assert pool.is_resident(ids[0])
        assert not pool.is_resident(ids[1])

    def test_mru_evicts_most_recent(self):
        disk, ids = make_disk()
        pool = self.run_trace(MRUPolicy(), [0, 1, 2], 2, disk, ids)
        assert pool.is_resident(ids[0])
        assert not pool.is_resident(ids[1])

    def test_fifo_ignores_recency(self):
        disk, ids = make_disk()
        # Access 0 again before overflow; FIFO still evicts 0 first.
        pool = self.run_trace(FIFOPolicy(), [0, 1, 0, 2], 2, disk, ids)
        assert not pool.is_resident(ids[0])
        assert pool.is_resident(ids[1])

    def test_clock_sweep_evicts_unreferenced_first(self):
        disk, ids = make_disk()
        # After [0,1,2] the sweep has cleared 1's bit; 2 enters referenced,
        # so the next fault evicts 1 and keeps 2.
        pool = self.run_trace(ClockPolicy(), [0, 1, 2, 3], 2, disk, ids)
        assert pool.is_resident(ids[2])
        assert pool.is_resident(ids[3])

    def test_clock_tracks_lru_more_closely_than_fifo(self):
        """On a hot/cold skewed trace, clock (an LRU approximation) should
        land between FIFO and LRU in miss count."""
        import random

        rng = random.Random(3)
        trace = []
        for _ in range(600):
            if rng.random() < 0.5:
                trace.append(rng.randrange(4))  # hot set
            else:
                trace.append(4 + rng.randrange(12))  # cold set

        def misses(policy):
            disk, ids = make_disk(num_blocks=16)
            return self.run_trace(policy, trace, 8, disk, ids).misses

        clock = misses(ClockPolicy())
        fifo = misses(FIFOPolicy())
        lru = misses(LRUPolicy())
        assert lru <= clock <= fifo

    def test_min_policy_is_no_worse_than_lru_on_any_trace(self):
        import random

        rng = random.Random(7)
        trace = [rng.randrange(8) for _ in range(200)]
        disk1, ids1 = make_disk()
        lru_pool = self.run_trace(LRUPolicy(), trace, 3, disk1, ids1)
        disk2, ids2 = make_disk()
        min_pool = self.run_trace(MinPolicy(trace), trace, 3, disk2, ids2)
        assert min_pool.misses <= lru_pool.misses

    def test_mru_beats_lru_on_cyclic_scan(self):
        """The classic result: LRU gets zero hits on a loop one block larger
        than memory, MRU retains most of it."""
        trace = list(range(5)) * 10  # loop of 5 blocks, pool of 4
        disk1, ids1 = make_disk()
        lru_pool = self.run_trace(LRUPolicy(), trace, 4, disk1, ids1)
        disk2, ids2 = make_disk()
        mru_pool = self.run_trace(MRUPolicy(), trace, 4, disk2, ids2)
        assert lru_pool.hits == 0
        assert mru_pool.hits > len(trace) // 2


class TestDropPinned:
    """Regression: drop used to discard a pinned frame silently, leaving
    the pin count pointing at a ghost so the later unpin raised."""

    def test_drop_pinned_refused(self):
        disk, ids = make_disk()
        pool = BufferPool(disk, capacity=2)
        pool.get(ids[0])
        pool.pin(ids[0])
        with pytest.raises(PoolError):
            pool.drop(ids[0])
        assert pool.is_resident(ids[0])
        pool.unpin(ids[0])  # the seed raised "not pinned" here
        pool.drop(ids[0])
        assert not pool.is_resident(ids[0])

    def test_drop_pinned_does_not_lose_dirty_data(self):
        disk, ids = make_disk()
        pool = BufferPool(disk, capacity=2)
        frame = pool.get(ids[0])
        frame.append(42)
        pool.mark_dirty(ids[0])
        pool.pin(ids[0])
        with pytest.raises(PoolError):
            pool.drop(ids[0])
        pool.unpin(ids[0])
        pool.drop(ids[0])
        assert disk.peek(ids[0]) == [0, 42]

    def test_drop_all_refuses_while_pinned(self):
        disk, ids = make_disk()
        pool = BufferPool(disk, capacity=2)
        pool.get(ids[0])
        pool.pin(ids[0])
        with pytest.raises(PoolError):
            pool.drop_all()
        pool.unpin(ids[0])
        pool.drop_all()
        assert pool.resident_count == 0


class TestMinClockDrift:
    """Regression: MinPolicy._advance ticked its clock for blocks absent
    from the offline trace (fresh put_new allocations), desynchronizing
    every later future-position lookup — drifted MIN could lose to LRU."""

    @staticmethod
    def run_workload(policy_factory, ops, capacity, num_blocks):
        disk = SimulatedDisk(block_capacity=4)
        ids = [disk.allocate() for _ in range(num_blocks)]
        for bid in ids:
            disk.write(bid, [0])
        disk.counter.reset()
        pool = BufferPool(disk, capacity=capacity, policy=policy_factory())
        for kind, index in ops:
            if kind == "get":
                pool.get(ids[index])
            else:  # a fresh allocation the offline trace never saw
                pool.put_new(disk.allocate(), [0])
        return pool.misses

    @staticmethod
    def make_workload(seed=6, length=120, num_blocks=8, new_rate=0.25):
        import random

        rng = random.Random(seed)
        ops, trace = [], []
        for _ in range(length):
            if rng.random() < new_rate:
                ops.append(("new", None))
            else:
                index = rng.randrange(num_blocks)
                ops.append(("get", index))
                trace.append(index)
        return ops, trace

    def test_untraced_insert_does_not_tick_clock(self):
        policy = MinPolicy([0, 1, 0])
        policy.on_insert(99)  # absent from the trace
        assert policy._clock == 0
        policy.on_access(0)
        assert policy._clock == 1

    def test_min_beats_lru_on_trace_with_allocations(self):
        """Seed 6 is a witness for the drift bug: with the clock ticking
        on untraced inserts MIN scored 64 misses vs LRU's 62; in sync it
        scores 40."""
        ops, trace = self.make_workload()
        lru = self.run_workload(LRUPolicy, ops, 3, 8)
        offline = self.run_workload(lambda: MinPolicy(trace), ops, 3, 8)
        assert offline <= lru
        assert offline < 50

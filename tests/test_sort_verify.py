"""Tests for stream verification helpers and stream sync()."""

import pytest

from repro.core import FileStream, Machine, StreamError
from repro.sort import is_permutation, is_sorted_stream, streams_equal


def machine():
    return Machine(block_size=8, memory_blocks=4)


class TestIsSorted:
    def test_sorted_stream(self):
        m = machine()
        assert is_sorted_stream(FileStream.from_records(m, [1, 2, 2, 3]))

    def test_unsorted_stream(self):
        m = machine()
        assert not is_sorted_stream(FileStream.from_records(m, [2, 1]))

    def test_empty_and_singleton(self):
        m = machine()
        assert is_sorted_stream(FileStream.from_records(m, []))
        assert is_sorted_stream(FileStream.from_records(m, [7]))

    def test_key_function(self):
        m = machine()
        s = FileStream.from_records(m, [(3, "a"), (1, "b")])
        assert is_sorted_stream(s, key=lambda r: r[1])
        assert not is_sorted_stream(s, key=lambda r: r[0])


class TestStreamComparisons:
    def test_streams_equal(self):
        m = machine()
        a = FileStream.from_records(m, [1, 2, 3])
        b = FileStream.from_records(m, [1, 2, 3])
        c = FileStream.from_records(m, [1, 3, 2])
        assert streams_equal(a, b)
        assert not streams_equal(a, c)

    def test_streams_equal_length_mismatch(self):
        m = machine()
        a = FileStream.from_records(m, [1])
        b = FileStream.from_records(m, [1, 2])
        assert not streams_equal(a, b)

    def test_is_permutation(self):
        m = machine()
        a = FileStream.from_records(m, [1, 2, 2, 3])
        b = FileStream.from_records(m, [3, 2, 1, 2])
        c = FileStream.from_records(m, [3, 2, 1, 1])
        assert is_permutation(a, b)
        assert not is_permutation(a, c)

    def test_is_permutation_with_unhashable_records(self):
        m = machine()
        a = FileStream.from_records(m, [[1, 2], [3]])
        b = FileStream.from_records(m, [[3], [1, 2]])
        assert is_permutation(a, b)


class TestStreamSync:
    def test_sync_releases_writer_frame(self):
        m = machine()
        s = FileStream(m)
        s.append(1)
        assert m.budget.in_use == m.B
        s.sync()
        assert m.budget.in_use == 0

    def test_sync_preserves_contents_and_allows_more_appends(self):
        m = machine()
        s = FileStream(m)
        s.extend([1, 2, 3])
        s.sync()
        s.extend([4, 5])
        s.finalize()
        assert list(s) == [1, 2, 3, 4, 5]

    def test_sync_creates_short_block(self):
        m = machine()  # B = 8
        s = FileStream(m)
        s.extend([1, 2, 3])
        s.sync()
        assert s.num_blocks == 1
        assert s.read_block(0) == [1, 2, 3]

    def test_sync_empty_buffer_is_noop(self):
        m = machine()
        s = FileStream(m)
        s.sync()
        assert s.num_blocks == 0
        assert m.budget.in_use == 0

    def test_sync_on_finalized_stream_raises(self):
        m = machine()
        s = FileStream.from_records(m, [1])
        with pytest.raises(StreamError):
            s.sync()

    def test_append_block_interleaving_guard(self):
        m = machine()
        s = FileStream(m)
        s.append(1)
        with pytest.raises(StreamError):
            s.append_block([2, 3])
        s.sync()
        s.append_block([2, 3])  # legal once the buffer is flushed
        assert list(s.finalize()) == [1, 2, 3]

    def test_append_block_oversized_rejected(self):
        m = machine()
        s = FileStream(m)
        with pytest.raises(StreamError):
            s.append_block(list(range(100)))

"""Fault injection on the *cached* (buffer-pool) data path.

Mirrors ``tests/test_faults.py`` for pool-mediated I/O: before PR 5 a
``BufferPool`` miss called ``DiskArray.read`` directly, so a plain
B+-tree lookup under a ``FaultPlan`` died with a raw
``TransientReadError`` that the same plan's streaming sort absorbed via
``RetryPolicy``, and a torn write flushed from a dirty frame surfaced as
an unrecoverable ``ChecksumError``.  The pool now routes misses through
``Runtime.read_block`` (retry + backoff as stall steps), write-backs
through the write-behind window, verifies payloads leaving memory under
checksums (scrub-rewrite while the good copy is in hand), and charges
its frames to the machine's shared memory budget.
"""

import pytest

from repro.core.exceptions import (
    ChecksumError,
    MemoryLimitExceeded,
    RetryExhaustedError,
    TransientIOError,
)
from repro.core.machine import Machine
from repro.faults.plan import FaultPlan
from repro.search.btree import BPlusTree
from repro.search.hashing import ExtendibleHashTable


def make_btree(machine, n=200):
    tree = BPlusTree(machine)
    for key in range(n):
        tree.insert(key, key * 2)
    machine.pool.flush_all()
    machine.pool.drop_all()
    return tree


class TestTransientReadsOnCachedPath:
    def test_btree_gets_survive_read_errors(self):
        """The first seed reproduction: a query workload under
        read_error_rate=0.5 completes with retries, not a raw
        TransientReadError."""
        m = Machine(block_size=8, memory_blocks=4)
        tree = make_btree(m)
        before = m.stats()
        with m.inject_faults(FaultPlan(seed=3, read_error_rate=0.5)):
            for key in range(0, 200, 7):
                assert tree.get(key) == key * 2
        delta = m.stats() - before
        assert delta.retries > 0
        assert delta.faults > 0
        assert delta.stall_steps > 0

    def test_btree_insert_delete_survive_read_errors(self):
        m = Machine(block_size=8, memory_blocks=4)
        tree = make_btree(m, n=120)
        with m.inject_faults(FaultPlan(seed=9, read_error_rate=0.2)):
            for key in range(120, 160):
                tree.insert(key, key * 2)
            for key in range(0, 40):
                tree.delete(key)
        tree.check_invariants()
        assert tree.get(10) is None
        assert tree.get(150) == 300
        assert m.stats().retries > 0

    def test_hashing_lookups_survive_read_errors(self):
        m = Machine(block_size=8, memory_blocks=4)
        table = ExtendibleHashTable(m)
        for key in range(150):
            table.insert(key, -key)
        m.pool.flush_all()
        m.pool.drop_all()
        before = m.stats()
        with m.inject_faults(FaultPlan(seed=21, read_error_rate=0.4)):
            for key in range(0, 150, 5):
                assert table.get(key) == -key
        assert (m.stats() - before).retries > 0

    def test_hashing_items_survive_read_errors(self):
        m = Machine(block_size=8, memory_blocks=4)
        table = ExtendibleHashTable(m)
        for key in range(100):
            table.insert(key, key)
        m.pool.flush_all()
        m.pool.drop_all()
        with m.inject_faults(FaultPlan(seed=2, read_error_rate=0.3)):
            assert sorted(k for k, _ in table.items()) == list(range(100))
        assert m.stats().retries > 0

    def test_range_query_survives_read_errors(self):
        m = Machine(block_size=8, memory_blocks=6)
        tree = make_btree(m)
        with m.inject_faults(FaultPlan(seed=5, read_error_rate=0.3)):
            got = list(tree.range_query(40, 90))
        assert got == [(k, k * 2) for k in range(40, 91)]
        assert m.stats().retries > 0

    def test_retry_exhaustion_surfaces_typed_error(self):
        """A block whose every read fails exhausts the policy and raises
        RetryExhaustedError — never the raw transient error."""
        m = Machine(block_size=4, memory_blocks=4)
        bad = m.disk.allocate()
        m.disk.write(bad, [1, 2, 3, 4])
        with m.inject_faults(FaultPlan(fail_block_reads={bad: None})):
            with pytest.raises(RetryExhaustedError) as info:
                m.pool.get(bad)
            assert isinstance(info.value.last_error, TransientIOError)


class TestTornFlushRecovery:
    def test_torn_dirty_flush_scrubbed_at_retirement(self):
        """The second seed reproduction: a torn write-back of a dirty
        frame is detected while the pool still holds the good copy and
        rewritten (scrubbed), so the disk image ends intact."""
        m = Machine(block_size=4, memory_blocks=4)
        bids = [m.disk.allocate() for _ in range(6)]
        for bid in bids:
            m.disk.write(bid, [0] * 4)
        with m.inject_faults(FaultPlan(seed=11, torn_writes={2})):
            for value, bid in enumerate(bids):
                frame = m.pool.get(bid)
                frame[:] = [value] * 4
                m.pool.mark_dirty(bid)
            m.pool.flush_all()
            m.pool.drop_all()
        assert m.pool.scrubs > 0
        for value, bid in enumerate(bids):
            assert m.disk.verify_checksum(bid)
            assert m.disk.read(bid) == [value] * 4

    def test_torn_flush_under_eviction_pressure(self):
        """Same recovery when the write-back happens on eviction rather
        than an explicit flush."""
        m = Machine(block_size=4, memory_blocks=2)
        bids = [m.disk.allocate() for _ in range(8)]
        for bid in bids:
            m.disk.write(bid, [0] * 4)
        with m.inject_faults(FaultPlan(seed=1, torn_write_rate=0.5)):
            for value, bid in enumerate(bids):
                frame = m.pool.get(bid)  # evicts under pressure
                frame[:] = [value] * 4
                m.pool.mark_dirty(bid)
            m.pool.flush_all()
            m.pool.drop_all()
        for value, bid in enumerate(bids):
            assert m.disk.read(bid) == [value] * 4

    def test_adversarial_tearing_exhausts_into_checksum_error(self):
        """When every rewrite tears too, the scrub loop gives up after
        the retry policy's attempt budget with the documented typed
        ChecksumError."""
        m = Machine(block_size=4, memory_blocks=2)
        bid = m.disk.allocate()
        m.disk.write(bid, [0] * 4)
        with m.inject_faults(FaultPlan(seed=4, torn_write_rate=1.0)):
            frame = m.pool.get(bid)
            frame[:] = [7] * 4
            m.pool.mark_dirty(bid)
            with pytest.raises(ChecksumError):
                m.pool.flush_all()
                m.pool.drop_all()

    def test_btree_workload_with_torn_writes_recovers(self):
        m = Machine(block_size=8, memory_blocks=4)
        with m.inject_faults(FaultPlan(seed=8, torn_write_rate=0.1)):
            tree = BPlusTree(m)
            for key in range(150):
                tree.insert(key, key)
            m.pool.flush_all()
            m.pool.drop_all()
        for key in range(150):
            assert tree.get(key) == key
        tree.check_invariants()


class TestRedoHook:
    def test_cold_miss_on_torn_block_repaired_via_redo_hook(self):
        """A block torn on disk with no in-memory copy is recomputed by
        the pool's redo hook, rewritten, and verified — the
        BlockFile.verify scrub model applied at read time."""
        m = Machine(block_size=4, memory_blocks=2)
        bid = m.disk.allocate()
        with m.inject_faults(FaultPlan(torn_writes={0})):
            m.disk.write(bid, [5, 6, 7, 8])  # tears; checksum recorded
        assert not m.disk.verify_checksum(bid)
        m.pool.redo_hook = lambda block_id: (
            [5, 6, 7, 8] if block_id == bid else None
        )
        assert m.pool.get(bid) == [5, 6, 7, 8]
        assert m.pool.scrubs > 0
        assert m.disk.verify_checksum(bid)
        m.pool.drop_all()
        assert m.disk.read(bid) == [5, 6, 7, 8]

    def test_cold_miss_without_hook_raises_checksum_error(self):
        m = Machine(block_size=4, memory_blocks=2)
        bid = m.disk.allocate()
        with m.inject_faults(FaultPlan(torn_writes={0})):
            m.disk.write(bid, [5, 6, 7, 8])
        with pytest.raises(ChecksumError):
            m.pool.get(bid)

    def test_hook_declining_reraises(self):
        m = Machine(block_size=4, memory_blocks=2)
        bid = m.disk.allocate()
        with m.inject_faults(FaultPlan(torn_writes={0})):
            m.disk.write(bid, [1, 2, 3, 4])
        m.pool.redo_hook = lambda block_id: None
        with pytest.raises(ChecksumError):
            m.pool.get(bid)


class TestSharedMemoryBudget:
    def test_pool_frames_charged_to_budget(self):
        """The third seed reproduction: resident frames appear in the
        machine's budget (reclaimable records), so structures plus
        algorithms share one M instead of legally using 2M."""
        m = Machine(block_size=8, memory_blocks=4)
        make_btree(m)  # drop_all leaves the pool empty
        assert m.budget.reclaimable == 0
        bids = [m.disk.allocate() for _ in range(6)]
        for bid in bids:
            m.disk.write(bid, [0] * 8)
        for bid in bids:
            m.pool.get(bid)
        assert m.pool.resident_count == m.pool.capacity
        assert m.budget.reclaimable == m.pool.capacity * m.B
        assert m.budget.occupancy <= m.M
        assert m.budget.in_use == 0  # cached frames are reclaimable

    def test_algorithm_pressure_shrinks_pool(self):
        """A hard reserve that needs the cache's memory evicts frames via
        the budget's reclaimer instead of failing."""
        m = Machine(block_size=8, memory_blocks=4)
        bids = [m.disk.allocate() for _ in range(4)]
        for bid in bids:
            m.disk.write(bid, [0] * 8)
            m.pool.get(bid)
        assert m.budget.reclaimable == m.M
        with m.budget.reserve(3 * m.B):
            assert m.pool.resident_count <= 1
            assert m.budget.occupancy <= m.M
        assert m.pool.evictions >= 3

    def test_reclaim_prefers_clean_frames(self):
        m = Machine(block_size=8, memory_blocks=4)
        bids = [m.disk.allocate() for _ in range(4)]
        for bid in bids:
            m.disk.write(bid, [0] * 8)
            m.pool.get(bid)
        dirty = bids[0]
        m.pool.get(dirty)[:] = [1] * 8
        m.pool.mark_dirty(dirty)
        writes_before = m.disk.counter.writes
        with m.budget.reserve(2 * m.B):
            # two clean frames sufficed; the dirty one stays resident
            assert m.pool.is_resident(dirty)
            assert m.disk.counter.writes == writes_before

    def test_pinned_frames_harden_and_survive_reclaim(self):
        m = Machine(block_size=8, memory_blocks=4)
        bids = [m.disk.allocate() for _ in range(4)]
        for bid in bids:
            m.disk.write(bid, [0] * 8)
            m.pool.get(bid)
        m.pool.pin(bids[0])
        assert m.budget.in_use == m.B
        assert m.budget.reclaimable == 3 * m.B
        with m.budget.reserve(3 * m.B):
            assert m.pool.is_resident(bids[0])
        m.pool.unpin(bids[0])
        assert m.budget.in_use == 0

    def test_bypass_when_memory_hard_committed(self):
        """When an algorithm hard-holds ~M, cached reads are served
        uncached (bypass) rather than raising or evicting hard space."""
        m = Machine(block_size=8, memory_blocks=4)
        bid = m.disk.allocate()
        m.disk.write(bid, list(range(8)))
        with m.budget.reserve(m.M):
            payload = m.pool.get(bid)
            assert payload == list(range(8))
            assert not m.pool.is_resident(bid)
            assert m.pool.bypasses == 1
        assert m.budget.in_use == 0

    def test_put_new_without_memory_raises_typed_error(self):
        m = Machine(block_size=8, memory_blocks=4)
        bid = m.disk.allocate()
        with m.budget.reserve(m.M):
            with pytest.raises(MemoryLimitExceeded):
                m.pool.put_new(bid, [0] * 8)


class TestTracerPoolAttribution:
    def test_pool_traffic_in_summary(self):
        m = Machine(block_size=8, memory_blocks=4)
        tree = make_btree(m)
        tracer = m.runtime.start_trace()
        with m.trace("btree-queries"):
            for key in range(0, 200, 11):
                tree.get(key)
        tracer.stop()
        pools = tracer.pool_summary()
        assert "btree-queries" in pools
        tally = pools["btree-queries"]
        assert tally["miss"] > 0
        assert tally["hit"] > 0
        table = tracer.summary_table()
        assert "hits" in table and "misses" in table
        assert "btree-queries" in table

    def test_pool_instants_in_chrome_trace(self):
        m = Machine(block_size=8, memory_blocks=2)
        bids = [m.disk.allocate() for _ in range(4)]
        for bid in bids:
            m.disk.write(bid, [0] * 8)
        tracer = m.runtime.start_trace()
        with m.trace("scan"):
            for bid in bids:
                m.pool.get(bid)
        tracer.stop()
        events = tracer.to_chrome()["traceEvents"]
        kinds = {e["name"] for e in events if e.get("cat") == "pool"}
        assert "pool:miss" in kinds
        assert "pool:eviction" in kinds

    def test_fault_free_trace_has_no_pool_columns(self):
        from repro.core.stream import FileStream

        m = Machine(block_size=8, memory_blocks=4)
        tracer = m.runtime.start_trace()
        with m.trace("stream-only"):
            FileStream.from_records(m, list(range(64)),
                                    name="t").delete()
        tracer.stop()
        assert "hits" not in tracer.summary_table()


class TestGetManyWaves:
    def test_get_many_returns_request_order_with_duplicates(self):
        m = Machine(block_size=4, memory_blocks=4)
        bids = [m.disk.allocate() for _ in range(3)]
        for value, bid in enumerate(bids):
            m.disk.write(bid, [value] * 4)
        order = [bids[2], bids[0], bids[2], bids[1]]
        payloads = m.pool.get_many(order)
        assert [p[0] for p in payloads] == [2, 0, 2, 1]
        assert m.pool.misses == 3  # the duplicate is fetched once
        # now resident: the same batch hits once per distinct block
        m.pool.get_many(order)
        assert m.pool.misses == 3
        assert m.pool.hits == 3

    def test_get_many_saves_steps_on_parallel_disks(self):
        """A D-disk machine reads a k-block batch in ~k/D steps where
        one-at-a-time gets pay k steps."""
        D = 4
        m = Machine(block_size=4, memory_blocks=8, num_disks=D)
        bids = [m.disk.allocate() for _ in range(8)]
        for bid in bids:
            m.disk.write(bid, [0] * 4)
        m.reset_stats()
        m.pool.get_many(bids)
        batched = m.stats().read_steps
        m2 = Machine(block_size=4, memory_blocks=8, num_disks=D)
        bids2 = [m2.disk.allocate() for _ in range(8)]
        for bid in bids2:
            m2.disk.write(bid, [0] * 4)
        m2.reset_stats()
        for bid in bids2:
            m2.pool.get(bid)
        serial = m2.stats().read_steps
        assert batched == 2  # 8 blocks striped over 4 disks
        assert serial == 8
        assert m.stats().reads == m2.stats().reads == 8

    def test_get_many_under_faults(self):
        m = Machine(block_size=4, memory_blocks=4, num_disks=2)
        bids = [m.disk.allocate() for _ in range(6)]
        for value, bid in enumerate(bids):
            m.disk.write(bid, [value] * 4)
        m.pool.drop_all()
        with m.inject_faults(FaultPlan(seed=6, read_error_rate=0.4)):
            payloads = m.pool.get_many(bids)
        assert [p[0] for p in payloads] == list(range(6))
        assert m.stats().retries > 0

    def test_get_many_larger_than_pool(self):
        m = Machine(block_size=4, memory_blocks=2)
        bids = [m.disk.allocate() for _ in range(7)]
        for value, bid in enumerate(bids):
            m.disk.write(bid, [value] * 4)
        payloads = m.pool.get_many(bids)
        assert [p[0] for p in payloads] == list(range(7))
        assert m.pool.resident_count <= m.pool.capacity
        assert m.budget.occupancy <= m.M

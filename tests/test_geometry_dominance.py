"""Tests for batched dominance counting."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ConfigurationError, Machine
from repro.geometry import dominance_counts, dominance_counts_naive


def machine(B=16, m=10):
    return Machine(block_size=B, memory_blocks=m)


def brute_force(points, queries):
    return {
        index: sum(1 for px, py in points if px <= qx and py <= qy)
        for index, (qx, qy) in enumerate(queries)
    }


def random_instance(n_points, n_queries, seed, extent=1_000):
    rng = random.Random(seed)
    points = [(rng.randrange(extent), rng.randrange(extent))
              for _ in range(n_points)]
    queries = [(rng.randrange(extent), rng.randrange(extent))
               for _ in range(n_queries)]
    return points, queries


FNS = [dominance_counts, dominance_counts_naive]


class TestDominance:
    @pytest.mark.parametrize("fn", FNS)
    def test_random_instance(self, fn):
        points, queries = random_instance(1_500, 400, seed=1)
        m = machine()
        assert fn(m, points, queries) == brute_force(points, queries)

    @pytest.mark.parametrize("fn", FNS)
    def test_boundaries_are_closed(self, fn):
        points = [(5, 5)]
        queries = [(5, 5), (4, 5), (5, 4), (6, 6)]
        m = machine()
        assert fn(m, points, queries) == {0: 1, 1: 0, 2: 0, 3: 1}

    @pytest.mark.parametrize("fn", FNS)
    def test_empty_points(self, fn):
        m = machine()
        assert fn(m, [], [(1, 1)]) == {0: 0}

    @pytest.mark.parametrize("fn", FNS)
    def test_empty_queries(self, fn):
        m = machine()
        assert fn(m, [(1, 1)], []) == {}

    def test_degenerate_shared_x(self):
        points = [(5, y) for y in range(300)]
        queries = [(5, 150), (4, 999), (6, 10)]
        m = machine()
        assert dominance_counts(m, points, queries) == {
            0: 151, 1: 0, 2: 11
        }

    def test_degenerate_shared_y(self):
        points = [(x, 7) for x in range(300)]
        queries = [(150, 7), (150, 6), (299, 8)]
        m = machine()
        assert dominance_counts(m, points, queries) == {
            0: 151, 1: 0, 2: 300
        }

    def test_forces_recursion(self):
        points, queries = random_instance(4_000, 1_000, seed=2)
        m = machine(B=16, m=10)  # M = 160 << 5000 events
        assert dominance_counts(m, points, queries) == brute_force(
            points, queries
        )

    def test_machine_too_small_rejected(self):
        m = Machine(block_size=16, memory_blocks=4)
        with pytest.raises(ConfigurationError):
            dominance_counts(m, [(1, 1)], [(2, 2)])

    def test_no_leaks(self):
        points, queries = random_instance(2_000, 300, seed=3)
        m = machine()
        before = m.disk.allocated_blocks
        dominance_counts(m, points, queries)
        assert m.disk.allocated_blocks == before
        assert m.budget.in_use == 0

    @given(
        st.lists(st.tuples(st.integers(0, 25), st.integers(0, 25)),
                 max_size=80),
        st.lists(st.tuples(st.integers(0, 25), st.integers(0, 25)),
                 max_size=40),
    )
    @settings(max_examples=30, deadline=None)
    def test_property_matches_brute_force(self, points, queries):
        m = machine(B=8, m=10)
        assert dominance_counts(m, points, queries) == brute_force(
            points, queries
        )

    def test_sweep_beats_naive_at_scale(self):
        points, queries = random_instance(12_000, 12_000, seed=4,
                                          extent=100_000)
        m1 = machine(B=32, m=10)
        with m1.measure() as io_sweep:
            dominance_counts(m1, points, queries)
        m2 = machine(B=32, m=10)
        with m2.measure() as io_naive:
            dominance_counts_naive(m2, points, queries)
        assert io_sweep.total < io_naive.total

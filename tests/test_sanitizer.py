"""Self-tests for the ``@io_bound`` runtime sanitizer.

The sanitizer is exercised directly on small decorated functions (so a
deliberate violation never poisons a library algorithm's registry entry)
and once against a real library algorithm to prove the registration and
envelope hold end to end.
"""

import pytest

from repro.analysis.sanitizer import (
    ENV_FLAG,
    IOBoundViolation,
    SanitizerRecord,
    clear_records,
    io_bound,
    records,
    registry,
    sanitize_enabled,
    sanitizer_report,
    sized,
)
from repro.core.bounds import scan_io, sort_io
from repro.core.machine import Machine
from repro.core.stream import FileStream


@pytest.fixture
def machine():
    return Machine(block_size=8, memory_blocks=8)


@pytest.fixture(autouse=True)
def fresh_records():
    clear_records()
    yield
    clear_records()


def write_read(machine, count):
    """A charged workload: write ``count`` records, read them back."""
    stream = FileStream(machine, name="san/workload")
    for value in range(count):
        stream.append(value)
    stream.finalize()
    total = sum(1 for _ in stream)
    stream.delete()
    return total


class TestEnabledFlag:
    def test_disabled_by_default(self, monkeypatch):
        monkeypatch.delenv(ENV_FLAG, raising=False)
        assert not sanitize_enabled()

    @pytest.mark.parametrize("value", ["", "0", "false", "no", " FALSE "])
    def test_falsey_values(self, monkeypatch, value):
        monkeypatch.setenv(ENV_FLAG, value)
        assert not sanitize_enabled()

    @pytest.mark.parametrize("value", ["1", "true", "yes", "on"])
    def test_truthy_values(self, monkeypatch, value):
        monkeypatch.setenv(ENV_FLAG, value)
        assert sanitize_enabled()


class TestRegistry:
    def test_decoration_registers_without_env(self, monkeypatch):
        monkeypatch.delenv(ENV_FLAG, raising=False)

        @io_bound(lambda machine, n: scan_io(n, machine.B),
                  label="test/registered")
        def scan(machine, values):
            return list(values)

        spec = registry()["test/registered"]
        assert spec.factor == 4.0
        assert scan.__io_bound__ is spec

    def test_library_algorithms_are_registered(self):
        import repro.geometry.sweep  # noqa: F401 — registration on import
        import repro.relational.joins  # noqa: F401
        import repro.sort.merge  # noqa: F401

        names = set(registry())
        assert any("external_merge_sort" in name for name in names)
        assert any("segment_intersections" in name for name in names)
        assert any("grace_hash_join" in name for name in names)

    def test_disabled_sanitizer_records_nothing(self, machine, monkeypatch):
        monkeypatch.delenv(ENV_FLAG, raising=False)

        @io_bound(lambda machine, n: 0.0, factor=1.0, slack=0,
                  label="test/never-measured")
        def tight(machine, count):
            return write_read(machine, count)

        assert tight(machine, 64) == 64  # would violate if measured
        assert records() == []


class TestEnvelope:
    def test_passing_call_records_measurement(self, machine, monkeypatch):
        monkeypatch.setenv(ENV_FLAG, "1")

        @io_bound(lambda machine, n: 4 * scan_io(n, machine.B),
                  factor=2.0, label="test/roomy",
                  n=lambda machine, count: count)
        def roomy(machine, count):
            return write_read(machine, count)

        assert roomy(machine, 64) == 64
        (record,) = records()
        assert record.name == "test/roomy"
        assert record.n == 64
        assert record.measured > 0
        assert record.measured <= record.allowed
        assert record.ratio > 0

    def test_tight_bound_raises(self, machine, monkeypatch):
        monkeypatch.setenv(ENV_FLAG, "1")

        @io_bound(lambda machine, n: 0.0, factor=1.0, slack=0,
                  label="test/zero-io")
        def impossible(machine, count):
            return write_read(machine, count)

        with pytest.raises(IOBoundViolation, match="test/zero-io"):
            impossible(machine, 64)
        # The failing call still left its record for the report.
        (record,) = records()
        assert record.measured > record.allowed

    def test_default_slack_absorbs_bookkeeping(self, machine, monkeypatch):
        monkeypatch.setenv(ENV_FLAG, "1")

        @io_bound(lambda machine, n: scan_io(n, machine.B),
                  label="test/default-slack")
        def single_block(machine, count):
            return write_read(machine, count)

        # One block's worth of records: measured I/Os sit inside the
        # default 4*m + 16 additive slack even at theory ~ 1.
        single_block(machine, machine.B)
        (record,) = records()
        assert record.allowed >= 4 * machine.m + 16

    def test_budget_peak_above_m_raises(self, machine, monkeypatch):
        monkeypatch.setenv(ENV_FLAG, "1")

        @io_bound(lambda machine, n: 100 * sort_io(
            max(1, n), machine.M, machine.B), label="test/hog")
        def hog(machine, count):
            # The budget itself rejects over-M acquires, so model an
            # algorithm that dodged it entirely (the case the sanitizer's
            # peak check exists to catch).
            machine.budget._peak = machine.M + 1
            return count

        with pytest.raises(IOBoundViolation, match="memory peak"):
            hog(machine, 1)

    def test_no_machine_argument_skips_measurement(self, monkeypatch):
        monkeypatch.setenv(ENV_FLAG, "1")

        @io_bound(lambda machine, n: 0.0, factor=1.0, slack=0,
                  label="test/no-machine")
        def pure(values):
            return sum(values)

        assert pure([1, 2, 3]) == 6
        assert records() == []

    def test_machine_found_via_carrier(self, machine, monkeypatch):
        monkeypatch.setenv(ENV_FLAG, "1")

        @io_bound(lambda machine, n: 2 * scan_io(n, machine.B),
                  label="test/carrier")
        def consume(stream):
            return sum(1 for _ in stream)

        stream = FileStream(machine, name="san/carrier")
        for value in range(32):
            stream.append(value)
        stream.finalize()
        assert consume(stream) == 32
        (record,) = records()
        assert record.n == 32  # len(stream) via the default extractor
        stream.delete()

    def test_infinite_theory_always_passes(self, machine, monkeypatch):
        monkeypatch.setenv(ENV_FLAG, "1")

        @io_bound(lambda machine, n: float("inf"), factor=1.0, slack=0,
                  label="test/unsized")
        def unknowable(machine, count):
            return write_read(machine, count)

        unknowable(machine, 256)
        (record,) = records()
        assert record.ratio == 0.0

    def test_output_sensitive_theory_sees_result(self, machine,
                                                 monkeypatch):
        monkeypatch.setenv(ENV_FLAG, "1")
        seen = {}

        @io_bound(lambda machine, n, result: seen.setdefault(
            "z", len(result)) * 0 + 4 * scan_io(n, machine.B),
            label="test/output-sensitive")
        def produce(machine, count):
            return write_read(machine, count) * [0]

        produce(machine, 16)
        assert seen["z"] == 16

    def test_call_aware_theory_sees_arguments(self, machine, monkeypatch):
        monkeypatch.setenv(ENV_FLAG, "1")
        seen = {}

        @io_bound(lambda machine, n, call: seen.setdefault(
            "knob", call["knob"]) * 0 + 4 * scan_io(n, machine.B),
            label="test/call-aware")
        def tunable(machine, count, knob=7):
            return write_read(machine, count)

        tunable(machine, 16)
        assert seen["knob"] == 7


class TestRealAlgorithmUnderSanitizer:
    def test_external_merge_sort_within_envelope(self, machine,
                                                 monkeypatch):
        monkeypatch.setenv(ENV_FLAG, "1")
        from repro.sort.merge import external_merge_sort

        stream = FileStream(machine, name="san/sort-input")
        for value in range(199, -1, -1):
            stream.append(value)
        stream.finalize()
        result = external_merge_sort(machine, stream, keep_input=False)
        assert list(result) == list(range(200))
        result.delete()
        assert any("external_merge_sort" in r.name for r in records())


class TestHelpers:
    def test_sized_on_sequences_and_iterators(self):
        assert sized([1, 2, 3]) == 3
        assert sized(iter([1, 2, 3])) == -1
        assert sized(iter([]), default=0) == 0

    def test_record_ratio_handles_zero_theory(self):
        record = SanitizerRecord(
            name="x", n=0, measured=5, theory=0.0, allowed=16.0)
        assert record.ratio == 0.0

    def test_report_empty_and_populated(self, machine, monkeypatch):
        clear_records()
        assert sanitizer_report() == "sanitizer: no records"
        monkeypatch.setenv(ENV_FLAG, "1")

        @io_bound(lambda machine, n: 4 * scan_io(n, machine.B),
                  label="test/report")
        def work(machine, count):
            return write_read(machine, count)

        work(machine, 64)
        report = sanitizer_report()
        assert "test/report" in report
        assert "ratio" in report


class TestMultiDiskMachines:
    """The sanitizer must charge and bound D > 1 machines correctly:
    theories see ``machine.D`` and striped traffic counts parallel I/O
    steps, not per-disk block transfers."""

    def test_striped_workload_within_d2_envelope(self, monkeypatch):
        monkeypatch.setenv(ENV_FLAG, "1")
        from repro.core.stream import StripedStream

        d2 = Machine(block_size=8, memory_blocks=8, num_disks=2)

        @io_bound(lambda machine, n: 2 * scan_io(n, machine.B, machine.D),
                  factor=2.0, label="test/striped",
                  n=lambda machine, count: count)
        def striped_write_read(machine, count):
            stream = StripedStream(machine, name="san/striped")
            for value in range(count):
                stream.append(value)
            stream.finalize()
            total = sum(1 for _ in stream)
            stream.delete()
            return total

        assert striped_write_read(d2, 256) == 256
        record = records()[-1]
        assert record.name == "test/striped"
        # scan(256, B=8, D=2) = 16 steps per direction, not 32.
        assert record.theory == 2 * scan_io(256, 8, 2) == 32
        assert record.measured <= record.allowed

    def test_d2_theory_tighter_than_d1(self, monkeypatch):
        monkeypatch.setenv(ENV_FLAG, "1")

        @io_bound(lambda machine, n: scan_io(n, machine.B, machine.D),
                  label="test/d-aware",
                  n=lambda machine, count: count)
        def scan_like(machine, count):
            return write_read(machine, count)

        scan_like(Machine(block_size=8, memory_blocks=8), 128)
        theory_d1 = records()[-1].theory
        scan_like(Machine(block_size=8, memory_blocks=8, num_disks=4), 128)
        theory_d4 = records()[-1].theory
        assert theory_d4 < theory_d1

    def test_library_algorithm_on_d2_machine(self, monkeypatch):
        monkeypatch.setenv(ENV_FLAG, "1")
        from repro.sort.merge import external_merge_sort

        d2 = Machine(block_size=8, memory_blocks=8, num_disks=2)
        stream = FileStream(d2, name="san/d2-input")
        for value in range(149, -1, -1):
            stream.append(value)
        stream.finalize()
        result = external_merge_sort(d2, stream, keep_input=False)
        assert list(result) == list(range(150))
        result.delete()
        assert d2.budget.in_use == 0


class TestRaiseMidRun:
    """A decorated algorithm that raises mid-run must leave the budget
    at its pre-call level — acquired frames travel in context managers
    or try/finally, never bare."""

    def test_synthetic_raise_restores_budget(self, machine, monkeypatch):
        monkeypatch.setenv(ENV_FLAG, "1")

        @io_bound(lambda machine, n: scan_io(n, machine.B),
                  label="test/mid-raise")
        def explodes(machine, count):
            machine.budget.acquire(machine.B)
            try:
                raise RuntimeError("mid-run failure")
            finally:
                machine.budget.release(machine.B)

        before = machine.budget.in_use
        with pytest.raises(RuntimeError):
            explodes(machine, 8)
        assert machine.budget.in_use == before

    def test_external_dijkstra_raise_restores_budget(self, monkeypatch):
        monkeypatch.setenv(ENV_FLAG, "1")
        from repro.core.exceptions import ConfigurationError
        from repro.graph.adjacency import AdjacencyStore
        from repro.graph.sssp import external_dijkstra

        m = Machine(block_size=8, memory_blocks=16)
        adjacency = AdjacencyStore.from_weighted_edges(
            m, 4, [(0, 1, 3), (1, 2, -5), (2, 3, 1)]
        )
        before = m.budget.in_use
        with pytest.raises(ConfigurationError):
            external_dijkstra(m, adjacency, 0)
        # The distance table's frame and the PQ's insertion heap are
        # context-managed, so the failed call holds nothing.
        assert m.budget.in_use == before

    def test_permute_naive_raise_restores_budget(self, monkeypatch):
        monkeypatch.setenv(ENV_FLAG, "1")
        from repro.core.exceptions import StreamError
        from repro.permute.permute import permute_naive

        m = Machine(block_size=8, memory_blocks=8)
        stream = FileStream.from_records(m, list(range(24)))
        bad_targets = [0, 1, 2] + [999] * 21  # out of range mid-run
        before = m.budget.in_use
        with pytest.raises(StreamError):
            permute_naive(m, stream, bad_targets, validate=False)
        assert m.budget.in_use == before

    def test_raise_mid_run_on_d2_machine(self, monkeypatch):
        monkeypatch.setenv(ENV_FLAG, "1")
        from repro.core.blockfile import BlockFile

        d2 = Machine(block_size=8, memory_blocks=8, num_disks=2)

        @io_bound(lambda machine, n: scan_io(n, machine.B, machine.D),
                  label="test/d2-raise")
        def writes_then_dies(machine, count):
            with BlockFile(machine, 2, name="san/d2") as table:
                table.write_block(0, list(range(count)))
                raise RuntimeError("mid-run failure")

        before = d2.budget.in_use
        with pytest.raises(RuntimeError):
            writes_then_dies(d2, 8)
        assert d2.budget.in_use == before

"""Tests for the disk-resident B+-tree."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ConfigurationError, KeyNotFound, Machine, search_io
from repro.search import BPlusTree
from repro.workloads import distinct_ints


def machine(B=16, m=8):
    return Machine(block_size=B, memory_blocks=m)


def build_tree(keys, B=16, m=8, order=None):
    m_ = machine(B, m)
    tree = BPlusTree(m_, order=order)
    for k in keys:
        tree.insert(k, f"v{k}")
    return m_, tree


class TestBasicOperations:
    def test_insert_then_get(self):
        _, tree = build_tree([5, 1, 9])
        assert tree.get(5) == "v5"
        assert tree.get(1) == "v1"
        assert tree.get(9) == "v9"

    def test_get_missing_returns_default(self):
        _, tree = build_tree([1])
        assert tree.get(99) is None
        assert tree.get(99, "absent") == "absent"

    def test_contains(self):
        _, tree = build_tree([1, 2])
        assert 1 in tree
        assert 3 not in tree

    def test_upsert_replaces_value(self):
        m_, tree = build_tree([7])
        tree.insert(7, "new")
        assert tree.get(7) == "new"
        assert len(tree) == 1

    def test_len_tracks_distinct_keys(self):
        _, tree = build_tree([3, 1, 4, 1, 5])
        assert len(tree) == 4

    def test_empty_tree(self):
        m_ = machine()
        tree = BPlusTree(m_)
        assert len(tree) == 0
        assert tree.get(1) is None
        assert list(tree.items()) == []
        tree.check_invariants()

    def test_items_sorted(self):
        keys = distinct_ints(500, seed=1)
        _, tree = build_tree(keys)
        assert [k for k, _ in tree.items()] == sorted(keys)

    def test_order_too_small_rejected(self):
        with pytest.raises(ConfigurationError):
            BPlusTree(machine(), order=2)

    def test_order_exceeding_block_rejected(self):
        with pytest.raises(ConfigurationError):
            BPlusTree(machine(B=8, m=8), order=20)


class TestGrowth:
    def test_splits_maintain_invariants(self):
        keys = distinct_ints(2000, seed=2)
        _, tree = build_tree(keys)
        tree.check_invariants()

    def test_sequential_inserts(self):
        _, tree = build_tree(range(1000))
        tree.check_invariants()
        assert [k for k, _ in tree.items()] == list(range(1000))

    def test_reverse_sequential_inserts(self):
        _, tree = build_tree(range(999, -1, -1))
        tree.check_invariants()
        assert len(tree) == 1000

    def test_height_grows_logarithmically(self):
        m_, tree = build_tree(distinct_ints(3000, seed=3))
        # order 15 -> height ~ log_15(3000 / 15) + 1
        assert tree.height <= search_io(3000, 15) + 2

    def test_all_keys_retrievable_after_growth(self):
        keys = distinct_ints(1500, seed=4)
        _, tree = build_tree(keys)
        for k in keys[::37]:
            assert tree.get(k) == f"v{k}"


class TestRangeQueries:
    def test_range_query_inclusive(self):
        _, tree = build_tree(range(0, 100, 2))
        assert [k for k, _ in tree.range_query(10, 20)] == [
            10, 12, 14, 16, 18, 20
        ]

    def test_range_query_between_keys(self):
        _, tree = build_tree(range(0, 100, 10))
        assert [k for k, _ in tree.range_query(15, 35)] == [20, 30]

    def test_range_query_empty(self):
        _, tree = build_tree([1, 100])
        assert list(tree.range_query(2, 99)) == []

    def test_range_query_whole_tree(self):
        keys = distinct_ints(700, seed=5)
        _, tree = build_tree(keys)
        result = [k for k, _ in tree.range_query(min(keys), max(keys))]
        assert result == sorted(keys)

    def test_range_io_proportional_to_output(self):
        m_, tree = build_tree(range(5000), B=16, m=4)
        m_.pool.drop_all()
        m_.reset_stats()
        small = list(tree.range_query(0, 99))
        io_small = m_.stats().reads
        m_.pool.drop_all()
        m_.reset_stats()
        large = list(tree.range_query(0, 1999))
        io_large = m_.stats().reads
        assert len(small) == 100 and len(large) == 2000
        # 20x the output should cost roughly 20x the leaf reads,
        # not 20x the full search cost.
        assert io_large < 25 * io_small
        assert io_large > 5 * io_small


class TestDeletion:
    def test_delete_leaf_entry(self):
        _, tree = build_tree([1, 2, 3])
        tree.delete(2)
        assert tree.get(2) is None
        assert len(tree) == 2

    def test_delete_missing_raises(self):
        _, tree = build_tree([1])
        with pytest.raises(KeyNotFound):
            tree.delete(99)

    def test_delete_all_keys(self):
        keys = distinct_ints(800, seed=6)
        _, tree = build_tree(keys)
        rng = random.Random(0)
        shuffled = keys[:]
        rng.shuffle(shuffled)
        for k in shuffled:
            tree.delete(k)
        assert len(tree) == 0
        assert list(tree.items()) == []

    def test_delete_keeps_invariants(self):
        keys = distinct_ints(1200, seed=7)
        _, tree = build_tree(keys)
        rng = random.Random(1)
        to_delete = rng.sample(keys, 800)
        for i, k in enumerate(to_delete):
            tree.delete(k)
            if i % 100 == 0:
                tree.check_invariants()
        tree.check_invariants()
        remaining = sorted(set(keys) - set(to_delete))
        assert [k for k, _ in tree.items()] == remaining

    def test_height_shrinks_after_mass_deletion(self):
        keys = list(range(2000))
        _, tree = build_tree(keys)
        tall = tree.height
        for k in keys[:-5]:
            tree.delete(k)
        assert tree.height < tall
        tree.check_invariants()

    def test_interleaved_insert_delete(self):
        m_ = machine()
        tree = BPlusTree(m_)
        reference = {}
        rng = random.Random(9)
        for step in range(3000):
            k = rng.randrange(300)
            if k in reference and rng.random() < 0.5:
                tree.delete(k)
                del reference[k]
            else:
                tree.insert(k, step)
                reference[k] = step
        assert dict(tree.items()) == reference
        tree.check_invariants()


class TestBulkLoad:
    def test_bulk_load_round_trip(self):
        m_ = machine()
        items = [(k, k * k) for k in range(1000)]
        tree = BPlusTree.bulk_load(m_, iter(items))
        assert list(tree.items()) == items
        tree.check_invariants(strict_fill=False)

    def test_bulk_load_empty(self):
        m_ = machine()
        tree = BPlusTree.bulk_load(m_, iter([]))
        assert len(tree) == 0
        tree.check_invariants()

    def test_bulk_load_single_item(self):
        m_ = machine()
        tree = BPlusTree.bulk_load(m_, iter([(1, "a")]))
        assert tree.get(1) == "a"

    def test_bulk_load_rejects_unsorted(self):
        m_ = machine()
        with pytest.raises(ConfigurationError):
            BPlusTree.bulk_load(m_, iter([(2, "a"), (1, "b")]))

    def test_bulk_load_rejects_duplicates(self):
        m_ = machine()
        with pytest.raises(ConfigurationError):
            BPlusTree.bulk_load(m_, iter([(1, "a"), (1, "b")]))

    def test_bulk_load_cheaper_than_inserts(self):
        items = [(k, k) for k in range(3000)]
        m1 = machine(m=4)
        with m1.measure() as io_bulk:
            BPlusTree.bulk_load(m1, iter(items))
        m2 = machine(m=4)
        tree = BPlusTree(m2)
        with m2.measure() as io_insert:
            for k, v in items:
                tree.insert(k, v)
        assert io_bulk.total < io_insert.total / 2

    def test_bulk_load_then_mutate(self):
        m_ = machine()
        tree = BPlusTree.bulk_load(m_, iter([(k, k) for k in range(500)]))
        tree.insert(1000, "x")
        tree.delete(250)
        assert tree.get(1000) == "x"
        assert tree.get(250) is None
        assert len(tree) == 500
        tree.check_invariants(strict_fill=False)

    def test_partial_fill(self):
        m_ = machine()
        tree = BPlusTree.bulk_load(
            m_, iter([(k, k) for k in range(400)]), fill=0.5
        )
        assert list(tree.items()) == [(k, k) for k in range(400)]

    def test_invalid_fill_rejected(self):
        m_ = machine()
        with pytest.raises(ConfigurationError):
            BPlusTree.bulk_load(m_, iter([]), fill=0.0)


class TestIOBehaviour:
    def test_cold_search_costs_height_ios(self):
        m_, tree = build_tree(distinct_ints(4000, seed=8), B=16, m=4)
        m_.pool.flush_all()
        for probe in [17, 905, 3621]:
            m_.pool.drop_all()
            m_.reset_stats()
            tree.get(probe)
            assert m_.stats().reads == tree.height

    def test_warm_search_costs_zero_ios(self):
        m_, tree = build_tree(distinct_ints(400, seed=8), B=16, m=64)
        tree.get(17)
        m_.reset_stats()
        tree.get(17)
        assert m_.stats().reads == 0


class TestPropertyBased:
    @given(st.lists(st.integers(-10**6, 10**6), max_size=300))
    @settings(max_examples=30, deadline=None)
    def test_matches_dict_semantics(self, keys):
        m_ = machine(B=8)
        tree = BPlusTree(m_)
        reference = {}
        for i, k in enumerate(keys):
            tree.insert(k, i)
            reference[k] = i
        assert dict(tree.items()) == reference
        tree.check_invariants()

    @given(
        st.lists(
            st.tuples(st.booleans(), st.integers(0, 40)),
            max_size=250,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_insert_delete_fuzz(self, operations):
        m_ = machine(B=8)
        tree = BPlusTree(m_)
        reference = {}
        for is_delete, k in operations:
            if is_delete and k in reference:
                tree.delete(k)
                del reference[k]
            elif not is_delete:
                tree.insert(k, k)
                reference[k] = k
        assert dict(tree.items()) == reference
        tree.check_invariants()

    @given(st.integers(0, 400), st.integers(0, 400))
    @settings(max_examples=30, deadline=None)
    def test_range_query_matches_filter(self, a, b):
        low, high = min(a, b), max(a, b)
        keys = distinct_ints(300, seed=11)
        _, tree = build_tree(keys, B=8)
        expected = sorted(k for k in keys if low <= k <= high)
        assert [k for k, _ in tree.range_query(low, high)] == expected

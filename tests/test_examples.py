"""Smoke tests: the fast examples must run end-to-end.

Only the quick examples are exercised here (the graph and parallel-disk
examples take minutes and are covered by the benchmarks that share their
code paths).
"""

import os
import subprocess
import sys

import pytest

EXAMPLES = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "examples"
)


def run_example(name: str) -> str:
    result = subprocess.run(
        [sys.executable, os.path.join(EXAMPLES, name)],
        capture_output=True,
        text=True,
        timeout=600,  # generous: CI boxes may run the suite in parallel
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


class TestExamples:
    def test_quickstart_reports_exact_match(self):
        out = run_example("quickstart.py")
        assert "measured / predicted" in out
        assert "1.000" in out

    def test_chaos_sort_survives_faults_and_crash(self):
        out = run_example("chaos_sort.py")
        assert "degraded output matches the clean sort" in out
        assert "crashed:" in out
        assert "resumed:         output matches the clean sort" in out
        assert "retries" in out  # degraded trace grows fault columns

    def test_service_mix_beats_serial_and_rolls_up_tenants(self):
        out = run_example("service_mix.py")
        assert "interleaved:" in out
        assert "vs serial baseline:" in out
        assert "svc/oltp" in out  # per-tenant roll-up table
        assert "svc/olap" in out
        assert "Chrome trace with per-tenant lanes" in out

    def test_pipeline_wordcount_fused_saves_io(self):
        out = run_example("pipeline_wordcount.py")
        assert "fused pipeline:" in out
        assert "saved" in out
        assert "phase trace" in out
        assert "-runs" in out  # the sorter's traced run phase

    def test_database_join_runs_all_three_joins(self):
        out = run_example("database_join.py")
        assert "sort-merge join" in out
        assert "grace hash join" in out
        assert "block nested loop" in out
        assert "top customer" in out

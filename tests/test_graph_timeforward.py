"""Tests for time-forward processing."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ConfigurationError, Machine
from repro.graph import (
    dag_longest_paths,
    evaluate_circuit,
    time_forward_process,
)


def machine(B=16, m=16):
    return Machine(block_size=B, memory_blocks=m)


def random_dag(n, avg_out=2.5, seed=0):
    rng = random.Random(seed)
    edges = set()
    target = min(int(n * avg_out), n * (n - 1) // 2)
    while len(edges) < target:
        u = rng.randrange(n - 1)
        v = rng.randrange(u + 1, n)
        edges.add((u, v))
    return sorted(edges)


class TestGenericEngine:
    def test_sum_of_ancestor_contributions(self):
        m = machine()
        edges = [(0, 2), (1, 2), (2, 3)]

        def compute(v, incoming):
            return v + sum(incoming)

        result = time_forward_process(m, 4, edges, compute)
        assert result == {0: 0, 1: 1, 2: 3, 3: 6}

    def test_in_degree_counting(self):
        m = machine()
        edges = random_dag(300, seed=1)
        result = time_forward_process(
            m, 300, edges, lambda v, incoming: len(incoming)
        )
        expected = {v: 0 for v in range(300)}
        for _, v in edges:
            expected[v] += 1
        assert result == expected

    def test_no_edges(self):
        m = machine()
        result = time_forward_process(m, 3, [], lambda v, i: v * 2)
        assert result == {0: 0, 1: 2, 2: 4}

    def test_non_topological_edge_rejected(self):
        m = machine()
        with pytest.raises(ConfigurationError):
            time_forward_process(m, 3, [(2, 1)], lambda v, i: 0)

    def test_out_of_range_edge_rejected(self):
        m = machine()
        with pytest.raises(ConfigurationError):
            time_forward_process(m, 3, [(0, 9)], lambda v, i: 0)

    def test_incoming_values_arrive_in_predecessor_order(self):
        m = machine()
        edges = [(0, 3), (1, 3), (2, 3)]

        def compute(v, incoming):
            return incoming if v == 3 else f"from-{v}"

        result = time_forward_process(m, 4, edges, compute)
        assert result[3] == ["from-0", "from-1", "from-2"]

    def test_no_leaks(self):
        m = machine()
        edges = random_dag(400, seed=2)
        before = m.disk.allocated_blocks
        time_forward_process(m, 400, edges, lambda v, i: 1)
        assert m.disk.allocated_blocks == before
        assert m.budget.in_use == 0


class TestLongestPaths:
    def test_path_graph(self):
        m = machine()
        edges = [(i, i + 1) for i in range(9)]
        assert dag_longest_paths(m, 10, edges) == {i: i for i in range(10)}

    def test_diamond(self):
        m = machine()
        edges = [(0, 1), (0, 2), (1, 3), (2, 3)]
        assert dag_longest_paths(m, 4, edges) == {0: 0, 1: 1, 2: 1, 3: 2}

    def test_matches_dynamic_programming(self):
        m = machine()
        n = 500
        edges = random_dag(n, seed=3)
        result = dag_longest_paths(m, n, edges)
        expected = {v: 0 for v in range(n)}
        for u, v in sorted(edges):
            expected[v] = max(expected[v], expected[u] + 1)
        assert result == expected

    @given(st.integers(2, 120), st.integers(0, 10**6))
    @settings(max_examples=20, deadline=None)
    def test_property_matches_dp(self, n, seed):
        m = machine(B=8, m=12)
        edges = random_dag(n, seed=seed)
        result = dag_longest_paths(m, n, edges)
        expected = {v: 0 for v in range(n)}
        for u, v in sorted(edges):
            expected[v] = max(expected[v], expected[u] + 1)
        assert result == expected


class TestCircuitEvaluation:
    def test_simple_and_or(self):
        m = machine()
        gates = [
            ("input", True), ("input", False), ("input", True),
            ("and", None),  # 3 = 0 AND 1 -> False
            ("or", None),   # 4 = 3 OR 2  -> True
        ]
        wires = [(0, 3), (1, 3), (2, 4), (3, 4)]
        values = evaluate_circuit(m, gates, wires)
        assert values[3] is False
        assert values[4] is True

    def test_not_gate(self):
        m = machine()
        gates = [("input", True), ("not", None)]
        assert evaluate_circuit(m, gates, [(0, 1)])[1] is False

    def test_not_gate_arity_enforced(self):
        m = machine()
        gates = [("input", True), ("input", True), ("not", None)]
        with pytest.raises(ConfigurationError):
            evaluate_circuit(m, gates, [(0, 2), (1, 2)])

    def test_gate_without_inputs_rejected(self):
        m = machine()
        gates = [("and", None)]
        with pytest.raises(ConfigurationError):
            evaluate_circuit(m, gates, [])

    def test_unknown_gate_rejected(self):
        m = machine()
        gates = [("xor", None)]
        with pytest.raises(ConfigurationError):
            evaluate_circuit(m, gates, [])

    def test_wide_random_circuit_matches_direct_eval(self):
        rng = random.Random(4)
        n = 300
        gates = []
        wires = []
        for v in range(n):
            if v < 20 or rng.random() < 0.1:
                gates.append(("input", rng.random() < 0.5))
            else:
                kind = rng.choice(["and", "or", "not"])
                gates.append((kind, None))
                fan_in = 1 if kind == "not" else rng.randint(1, 4)
                sources = rng.sample(range(v), min(fan_in, v))
                for u in sorted(sources):
                    wires.append((u, v))
        # Guard: every non-input gate got at least one wire.
        fed = {v for _, v in wires}
        gates = [
            g if g[0] == "input" or v in fed else ("input", True)
            for v, g in enumerate(gates)
        ]
        m = machine()
        values = evaluate_circuit(m, gates, wires)

        incoming = {v: [] for v in range(n)}
        for u, v in sorted(wires):
            incoming[v].append(u)
        expected = {}
        for v, (kind, payload) in enumerate(gates):
            if kind == "input":
                expected[v] = bool(payload)
            elif kind == "not":
                expected[v] = not expected[incoming[v][0]]
            elif kind == "and":
                expected[v] = all(expected[u] for u in incoming[v])
            else:
                expected[v] = any(expected[u] for u in incoming[v])
        assert values == expected

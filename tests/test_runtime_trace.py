"""Tests for the runtime tracer: phase attribution and Chrome export."""

import json

from repro.core import IOStats, Machine, StripedStream
from repro.runtime.trace import UNTRACED
from repro.sort import external_merge_sort
from repro.workloads import uniform_ints


def traced_sort(num_disks=4, n=2048):
    """Run a traced striped merge sort; returns (machine, tracer, delta)."""
    machine = Machine(block_size=16, memory_blocks=16, num_disks=num_disks)
    stream = StripedStream.from_records(machine, uniform_ints(n, seed=5))
    tracer = machine.runtime.start_trace()
    before = machine.stats()
    external_merge_sort(machine, stream, stream_cls=StripedStream)
    tracer.stop()
    return machine, tracer, machine.stats() - before


class TestPhaseAttribution:
    def test_phase_sums_equal_machine_stats_delta(self):
        _, tracer, delta = traced_sort()
        total = IOStats()
        for stats in tracer.phase_summary().values():
            total = total + stats
        assert total == delta
        assert tracer.steps == delta.total_steps

    def test_sort_phases_are_labeled(self):
        _, tracer, _ = traced_sort()
        labels = set(tracer.phase_summary())
        assert "run-formation" in labels
        assert "merge-pass-1" in labels

    def test_nested_phases_join_with_slash(self):
        machine = Machine(block_size=4, memory_blocks=4, num_disks=2)
        tracer = machine.runtime.start_trace()
        with machine.trace("outer"):
            with machine.trace("inner"):
                StripedStream.from_records(machine, range(16))
        assert set(tracer.phase_summary()) == {"outer/inner"}

    def test_io_outside_any_phase_is_untraced(self):
        machine = Machine(block_size=4, memory_blocks=4, num_disks=2)
        tracer = machine.runtime.start_trace()
        StripedStream.from_records(machine, range(16))
        assert set(tracer.phase_summary()) == {UNTRACED}

    def test_stop_detaches_listener(self):
        machine = Machine(block_size=4, memory_blocks=4)
        tracer = machine.runtime.start_trace()
        tracer.stop()
        StripedStream.from_records(machine, range(16))
        assert tracer.phase_summary() == {}

    def test_start_resets_previous_trace(self):
        machine = Machine(block_size=4, memory_blocks=4)
        tracer = machine.runtime.start_trace()
        StripedStream.from_records(machine, range(16))
        tracer = machine.runtime.start_trace()
        assert tracer.phase_summary() == {}
        assert tracer.steps == 0

    def test_summary_table_lists_phases_and_total(self):
        _, tracer, delta = traced_sort()
        table = tracer.summary_table()
        assert "run-formation" in table
        assert "total" in table
        assert str(delta.total) in table


class TestChromeExport:
    def test_export_is_valid_chrome_trace_json(self):
        _, tracer, _ = traced_sort()
        trace = json.loads(tracer.to_json())
        events = trace["traceEvents"]
        assert isinstance(events, list) and events
        for event in events:
            assert {"name", "ph", "pid", "tid"} <= set(event)
            if event["ph"] == "X":
                assert event["ts"] >= 0 and event["dur"] >= 1

    def test_one_lane_per_disk_plus_phase_lane(self):
        machine, tracer, _ = traced_sort(num_disks=4)
        events = tracer.to_chrome()["traceEvents"]
        lanes = {e["tid"] for e in events if e.get("cat") == "io"}
        assert lanes <= set(range(machine.num_disks))
        names = {e["args"]["name"] for e in events
                 if e["ph"] == "M" and e["name"] == "thread_name"}
        assert names == {"disk 0", "disk 1", "disk 2", "disk 3", "phases"}

    def test_event_step_sums_match_phase_stats(self):
        # Every io event carries its phase; per-phase transfer counts
        # recomputed from the raw events equal the summary (and thus the
        # machine's counters, per TestPhaseAttribution).
        _, tracer, _ = traced_sort()
        per_phase = {}
        for event in tracer.to_chrome()["traceEvents"]:
            if event.get("cat") != "io":
                continue
            label = event["args"]["phase"]
            per_phase[label] = (per_phase.get(label, 0)
                                + len(event["args"]["blocks"]))
        summary = tracer.phase_summary()
        assert per_phase == {
            label: stats.total for label, stats in summary.items()
        }

    def test_phase_spans_cover_their_steps(self):
        _, tracer, _ = traced_sort()
        spans = [e for e in tracer.to_chrome()["traceEvents"]
                 if e.get("cat") == "phase"]
        assert spans
        summary = tracer.phase_summary()
        for span in spans:
            assert span["args"]["steps"] == \
                summary[span["name"]].total_steps

    def test_save_round_trips_through_file(self, tmp_path):
        _, tracer, _ = traced_sort()
        path = tmp_path / "trace.json"
        tracer.save(str(path))
        assert json.loads(path.read_text()) == tracer.to_chrome()

"""Tests for I/O statistics plumbing and table formatting."""

from repro.core import IOCounter, IOStats, format_table


class TestIOCounter:
    def test_snapshot_is_immutable_copy(self):
        counter = IOCounter()
        counter.reads = 3
        snap = counter.snapshot()
        counter.reads = 10
        assert snap.reads == 3

    def test_reset(self):
        counter = IOCounter(reads=5, writes=2, read_steps=5, write_steps=2)
        counter.reset()
        assert counter.snapshot() == IOStats()


class TestIOStats:
    def test_total_and_steps(self):
        stats = IOStats(reads=3, writes=4, read_steps=2, write_steps=1)
        assert stats.total == 7
        assert stats.total_steps == 3

    def test_subtraction(self):
        after = IOStats(reads=10, writes=8, read_steps=10, write_steps=8)
        before = IOStats(reads=4, writes=3, read_steps=4, write_steps=3)
        delta = after - before
        assert delta == IOStats(reads=6, writes=5, read_steps=6,
                                write_steps=5)

    def test_addition(self):
        a = IOStats(reads=1, writes=2, read_steps=1, write_steps=2)
        b = IOStats(reads=3, writes=4, read_steps=3, write_steps=4)
        assert a + b == IOStats(reads=4, writes=6, read_steps=4,
                                write_steps=6)

    def test_equality_and_hash_semantics(self):
        assert IOStats() == IOStats()
        assert IOStats(reads=1) != IOStats()


class TestFormatTable:
    def test_alignment(self):
        text = format_table(["name", "n"], [["a", 1], ["bbb", 222]])
        lines = text.splitlines()
        assert len(lines) == 4  # header, rule, two rows
        assert lines[0].endswith("n")
        widths = {len(line) for line in lines}
        assert len(widths) == 1  # all lines equally wide

    def test_handles_non_string_cells(self):
        text = format_table(["x"], [[3.14], [None]])
        assert "3.14" in text
        assert "None" in text

    def test_empty_rows(self):
        text = format_table(["a", "b"], [])
        assert "a" in text and "b" in text

"""Tests for the EM100-series interprocedural flow analysis.

Each fixture is a tiny synthetic module fed through
:func:`lint_sources_flow`; paths are chosen so the modules classify as
algorithm code (the strict tier).  Assertions filter by rule id so the
EM001-series static findings the fixtures also trigger (missing bound
docstrings etc.) don't interfere.
"""

import json

import pytest

from repro.analysis.flow import (
    lint_sources_flow,
    load_baseline,
    split_by_baseline,
    to_sarif,
    write_baseline,
)
from repro.analysis.flow.sarif import SARIF_VERSION, fingerprint
from repro.analysis.rules import FLOW_RULES, RULES


def flow_findings(sources, rule=None):
    findings = [f for f in lint_sources_flow(sources) if not f.waived]
    if rule is not None:
        findings = [f for f in findings if f.rule == rule]
    return findings


ALGO = "src/repro/algo/fixture.py"


# ---------------------------------------------------------------------
# EM101: budget leaks
# ---------------------------------------------------------------------

class TestBudgetLeaks:
    def test_intraprocedural_exception_leak(self):
        src = '''
def _run(machine, stream):
    machine.budget.acquire(machine.B)
    total = _risky(stream)
    machine.budget.release(machine.B)
    return total
'''
        findings = flow_findings([(ALGO, src)], rule="EM101")
        assert len(findings) == 1
        finding = findings[0]
        assert finding.line == 3
        assert "exception path" in finding.message
        assert any("leaking path" in hop for hop in finding.trace)

    def test_try_finally_is_clean(self):
        src = '''
def _run(machine, stream):
    machine.budget.acquire(machine.B)
    try:
        return _risky(stream)
    finally:
        machine.budget.release(machine.B)
'''
        assert flow_findings([(ALGO, src)], rule="EM101") == []

    def test_early_return_leak(self):
        src = '''
def _run(machine, items):
    machine.budget.acquire(machine.B)
    if not items:
        return []
    out = sorted(items)
    machine.budget.release(machine.B)
    return out
'''
        findings = flow_findings([(ALGO, src)], rule="EM101")
        assert findings
        assert any("return path" in f.message for f in findings)

    def test_interprocedural_leak_has_call_chain_trace(self):
        helper = '''
def grab(machine, count):
    machine.budget.acquire(count)
'''
        caller = '''
from .helper import grab

def _run(machine, items):
    grab(machine, len(items))
    return sorted(items)
'''
        helper_path = "src/repro/algo/helper.py"
        findings = flow_findings(
            [(helper_path, helper), (ALGO, caller)], rule="EM101"
        )
        assert findings
        # The trace walks from the acquiring helper to the caller.
        joined = " ".join(" ".join(f.trace) for f in findings)
        assert "helper.py" in joined
        assert any(f.path == ALGO for f in findings) \
            or any("fixture" in joined for f in findings)

    def test_interprocedural_leak_released_by_caller_is_clean(self):
        helper = '''
def grab(machine, count):
    machine.budget.acquire(count)
'''
        caller = '''
from .helper import grab

def _run(machine, items):
    grab(machine, len(items))
    try:
        return sorted(items)
    finally:
        machine.budget.release(len(items))
'''
        findings = flow_findings(
            [("src/repro/algo/helper.py", helper), (ALGO, caller)],
            rule="EM101",
        )
        assert findings == []


# ---------------------------------------------------------------------
# EM102 / EM103: stream dataflow
# ---------------------------------------------------------------------

class TestStreamFlow:
    def test_nested_full_scan_detected(self):
        src = '''
def _join(machine, left: FileStream, right: FileStream):
    out = []
    for a in left:
        for b in right:
            if a == b:
                out.append(a)
    return out
'''
        findings = flow_findings([(ALGO, src)], rule="EM102")
        assert len(findings) == 1
        assert findings[0].line == 5

    def test_scan_of_loop_local_stream_is_clean(self):
        src = '''
def _split(machine, runs):
    out = []
    for run in runs:
        for record in run:
            out.append(record)
    return out
'''
        assert flow_findings([(ALGO, src)], rule="EM102") == []

    def test_interprocedural_materialization(self):
        helper = '''
def collect(stream):
    return sorted(stream)
'''
        caller = '''
from .helper import collect

def _run(machine, stream: FileStream):
    return collect(stream)
'''
        findings = flow_findings(
            [("src/repro/algo/helper.py", helper), (ALGO, caller)],
            rule="EM103",
        )
        assert len(findings) == 1
        assert findings[0].path == ALGO
        assert "helper" in findings[0].message

    def test_nested_scan_via_callee_summary(self):
        helper = '''
def probe(stream, needle):
    for record in stream:
        if record == needle:
            return True
    return False
'''
        caller = '''
from .helper import probe

def _run(machine, left: FileStream, right: FileStream):
    hits = []
    for a in left:
        if probe(right, a):
            hits.append(a)
    return hits
'''
        findings = flow_findings(
            [("src/repro/algo/helper.py", helper), (ALGO, caller)],
            rule="EM102",
        )
        assert findings
        joined = " ".join(" ".join(f.trace) for f in findings)
        assert "helper.py" in joined


# ---------------------------------------------------------------------
# EM103 fusion sub-check: sort-then-single-scan is a Sorter candidate
# ---------------------------------------------------------------------

class TestFusionCandidates:
    def test_single_scan_over_materialized_sort_flagged(self):
        src = '''
def _run(machine, stream: FileStream):
    ordered = external_merge_sort(machine, stream, key=lambda r: r)
    total = 0
    for record in ordered:
        total += record
    ordered.delete()
    return total
'''
        findings = flow_findings([(ALGO, src)], rule="EM103")
        assert len(findings) == 1
        assert "pipelined Sorter" in findings[0].message

    def test_second_consumer_suppresses_fusion_finding(self):
        # Two scans genuinely need the materialized copy; fusing the
        # sort into the first would force a re-sort for the second.
        src = '''
def _run(machine, stream: FileStream):
    ordered = external_merge_sort(machine, stream, key=lambda r: r)
    total = 0
    for record in ordered:
        total += record
    for record in ordered:
        total -= record
    ordered.delete()
    return total
'''
        assert flow_findings([(ALGO, src)], rule="EM103") == []

    def test_lifecycle_calls_do_not_mask_the_single_scan(self):
        # delete()/len() are bookkeeping, not consumers: the stream is
        # still single-scan and the candidate must fire.
        src = '''
def _run(machine, stream: FileStream):
    ordered = external_merge_sort(machine, stream, key=lambda r: r)
    count = len(ordered)
    values = []
    for record in ordered:
        values.append(record)
    ordered.delete()
    return count, values
'''
        findings = flow_findings([(ALGO, src)], rule="EM103")
        assert len(findings) == 1

    def test_refactored_modules_are_fusion_clean(self):
        # The pipelined refactor leaves no unwaived sort-then-scan
        # boundary in the fused join / time-forward / list-ranking /
        # suffix-array paths (the materialized control variants carry
        # explicit waivers).
        import pathlib

        root = pathlib.Path(__file__).resolve().parents[1] / "src"
        modules = [
            root / "repro" / "relational" / "joins.py",
            root / "repro" / "graph" / "timeforward.py",
            root / "repro" / "graph" / "list_ranking.py",
            root / "repro" / "text" / "suffix_array.py",
        ]
        sources = [(str(path), path.read_text()) for path in modules]
        assert flow_findings(sources, rule="EM103") == []


# ---------------------------------------------------------------------
# EM104 / EM105: envelope discipline
# ---------------------------------------------------------------------

class TestEnvelope:
    def test_unguarded_data_dependent_reserve(self):
        src = '''
def _run(machine, items):
    with machine.budget.reserve(len(items)):
        return sorted(items)
'''
        findings = flow_findings([(ALGO, src)], rule="EM104")
        assert len(findings) == 1
        assert "no guard" in findings[0].message

    def test_guarded_reserve_is_clean(self):
        src = '''
def _run(machine, items):
    if len(items) > machine.M:
        raise MemoryLimitExceeded(len(items), 0, machine.M)
    with machine.budget.reserve(len(items)):
        return sorted(items)
'''
        assert flow_findings([(ALGO, src)], rule="EM104") == []

    def test_model_derived_reserve_is_clean(self):
        src = '''
def _run(machine, stream):
    with machine.budget.reserve(machine.M - 2 * machine.B):
        return list(range(3))
'''
        assert flow_findings([(ALGO, src)], rule="EM104") == []

    def test_machine_aliasing_detected(self):
        machine_mod = '''
class Machine:
    def __init__(self, block_size, memory_blocks):
        self.block_size = block_size
        self.memory_blocks = memory_blocks
'''
        helper = '''
def scan_all(machine, stream):
    return machine.B
'''
        caller = '''
from ..core.machine import Machine
from .helper import scan_all

def _run(machine, stream):
    private = Machine(block_size=4, memory_blocks=2)
    return scan_all(private, stream)
'''
        findings = flow_findings(
            [("src/repro/core/machine.py", machine_mod),
             ("src/repro/algo/helper.py", helper), (ALGO, caller)],
            rule="EM105",
        )
        assert len(findings) == 1
        assert "private" in findings[0].message


# ---------------------------------------------------------------------
# SARIF output
# ---------------------------------------------------------------------

LEAKY = '''
def _run(machine, stream):
    machine.budget.acquire(machine.B)
    total = _risky(stream)
    machine.budget.release(machine.B)
    return total
'''

WAIVED_SCAN = '''
def _join(machine, left: FileStream, right: FileStream):
    out = []
    for a in left:
        # em: ok(EM102) deliberate quadratic baseline
        for b in right:
            out.append((a, b))
    return out
'''


class TestSarif:
    def sarif_log(self):
        findings = lint_sources_flow([
            (ALGO, LEAKY),
            ("src/repro/algo/waived.py", WAIVED_SCAN),
        ])
        rules = dict(RULES)
        rules.update(FLOW_RULES)
        return findings, to_sarif(findings, rules)

    def test_log_is_valid_sarif_2_1_0(self):
        findings, log = self.sarif_log()
        # JSON-serializable with the 2.1.0 required shape.
        log = json.loads(json.dumps(log))
        assert log["version"] == SARIF_VERSION == "2.1.0"
        assert "sarif-schema-2.1.0" in log["$schema"]
        assert len(log["runs"]) == 1
        run = log["runs"][0]
        driver = run["tool"]["driver"]
        assert driver["name"] == "emlint"
        rule_ids = {rule["id"] for rule in driver["rules"]}
        assert {"EM101", "EM102", "EM103", "EM104", "EM105"} <= rule_ids
        for rule in driver["rules"]:
            assert rule["shortDescription"]["text"]
        assert len(run["results"]) == len(findings)
        for result in run["results"]:
            assert result["ruleId"] in rule_ids
            assert result["message"]["text"]
            location = result["locations"][0]["physicalLocation"]
            assert location["artifactLocation"]["uri"].endswith(".py")
            assert location["region"]["startLine"] >= 1
            assert "emlintFingerprint/v1" in result["partialFingerprints"]

    def test_waived_findings_are_suppressed_results(self):
        findings, log = self.sarif_log()
        results = log["runs"][0]["results"]
        suppressed = [r for r in results if r.get("suppressions")]
        open_results = [r for r in results if not r.get("suppressions")]
        assert any(r["ruleId"] == "EM102" for r in suppressed)
        for result in suppressed:
            assert result["suppressions"][0]["kind"] == "inSource"
        assert any(r["ruleId"] == "EM101" for r in open_results)

    def test_interprocedural_trace_becomes_code_flow(self):
        findings, log = self.sarif_log()
        results = log["runs"][0]["results"]
        flows = [r for r in results if r["ruleId"] == "EM101"
                 and r.get("codeFlows")]
        assert flows
        locations = flows[0]["codeFlows"][0]["threadFlows"][0]["locations"]
        for loc in locations:
            region = loc["location"]["physicalLocation"]["region"]
            assert region["startLine"] >= 1


# ---------------------------------------------------------------------
# Baseline workflow
# ---------------------------------------------------------------------

class TestBaseline:
    def test_round_trip_filters_known_findings(self, tmp_path):
        findings = flow_findings([(ALGO, LEAKY)])
        baseline = tmp_path / "baseline.json"
        count = write_baseline(findings, str(baseline))
        assert count == len(load_baseline(str(baseline))) > 0

        new, known = split_by_baseline(findings, str(baseline))
        assert new == []
        assert len(known) == len(findings)

    def test_new_findings_stay_open(self, tmp_path):
        old = flow_findings([(ALGO, LEAKY)])
        baseline = tmp_path / "baseline.json"
        write_baseline(old, str(baseline))

        grown = LEAKY + '''

def _later(machine, items):
    with machine.budget.reserve(len(items)):
        return sorted(items)
'''
        new, known = split_by_baseline(
            flow_findings([(ALGO, grown)]), str(baseline)
        )
        assert known  # the old leak is still filtered
        assert any(f.rule == "EM104" for f in new)

    def test_fingerprint_survives_line_shifts(self):
        shifted = "\n\n\n" + LEAKY
        a = flow_findings([(ALGO, LEAKY)], rule="EM101")
        b = flow_findings([(ALGO, shifted)], rule="EM101")
        assert a and b
        assert fingerprint(a[0]) == fingerprint(b[0])

    def test_version_mismatch_rejected(self, tmp_path):
        bad = tmp_path / "baseline.json"
        bad.write_text(json.dumps({"version": 99, "fingerprints": {}}))
        with pytest.raises(ValueError):
            load_baseline(str(bad))


# ---------------------------------------------------------------------
# Repository gate
# ---------------------------------------------------------------------

class TestRepositoryIsClean:
    def test_src_tree_has_no_unwaived_flow_findings(self):
        import pathlib

        from repro.analysis.flow import lint_paths_flow

        root = pathlib.Path(__file__).resolve().parent.parent
        paths = sorted(
            str(p) for p in (root / "src" / "repro").rglob("*.py")
        )
        open_findings = [
            f for f in lint_paths_flow(paths) if not f.waived
        ]
        assert open_findings == []

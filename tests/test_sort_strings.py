"""Tests for external string sorting."""

import random
import string

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ConfigurationError, FileStream, Machine
from repro.sort import external_merge_sort, external_string_sort


def machine(B=16, m=8):
    return Machine(block_size=B, memory_blocks=m)


def random_words(n, alphabet="abcdef", max_len=12, seed=0):
    rng = random.Random(seed)
    return [
        "".join(rng.choices(alphabet, k=rng.randint(0, max_len)))
        for _ in range(n)
    ]


class TestStringSort:
    def test_sorts_random_words(self):
        words = random_words(2_000, seed=1)
        m = machine()
        out = external_string_sort(m, FileStream.from_records(m, words))
        assert list(out) == sorted(words)

    def test_empty_stream(self):
        m = machine()
        assert list(external_string_sort(m, FileStream(m).finalize())) == []

    def test_single_word(self):
        m = machine()
        out = external_string_sort(m, FileStream.from_records(m, ["zeta"]))
        assert list(out) == ["zeta"]

    def test_empty_strings_sort_first(self):
        words = ["b", "", "a", "", "ab"]
        m = machine()
        out = external_string_sort(m, FileStream.from_records(m, words))
        assert list(out) == ["", "", "a", "ab", "b"]

    def test_prefix_free_vs_prefix_heavy(self):
        shared = ["wiki/article/" + w for w in random_words(1_500, seed=2)]
        m = machine()
        out = external_string_sort(m, FileStream.from_records(m, shared))
        assert list(out) == sorted(shared)

    def test_massive_duplicates(self):
        words = ["dup"] * 2_000 + ["aaa", "zzz"]
        m = machine()
        out = external_string_sort(m, FileStream.from_records(m, words))
        assert list(out) == sorted(words)

    def test_one_string_prefix_of_another(self):
        words = ["abc", "ab", "abcd", "a", "abce"] * 300
        m = machine()
        out = external_string_sort(m, FileStream.from_records(m, words))
        assert list(out) == sorted(words)

    def test_stability_with_key_function(self):
        pairs = [(w, i) for i, w in
                 enumerate(random_words(1_000, alphabet="ab", max_len=4,
                                        seed=3))]
        m = machine()
        out = external_string_sort(
            m, FileStream.from_records(m, pairs), key=lambda r: r[0]
        )
        assert list(out) == sorted(pairs, key=lambda r: r[0])

    def test_matches_merge_sort(self):
        words = random_words(2_500, alphabet=string.ascii_lowercase,
                             seed=4)
        m1 = machine()
        radix = list(
            external_string_sort(m1, FileStream.from_records(m1, words))
        )
        m2 = machine()
        merged = list(
            external_merge_sort(m2, FileStream.from_records(m2, words))
        )
        assert radix == merged

    def test_machine_too_small_rejected(self):
        m = Machine(block_size=16, memory_blocks=4)
        with pytest.raises(ConfigurationError):
            external_string_sort(m, FileStream(m).finalize())

    def test_no_leaks(self):
        words = random_words(1_500, seed=5)
        m = machine()
        s = FileStream.from_records(m, words)
        out = external_string_sort(m, s)
        assert m.disk.allocated_blocks == s.num_blocks + out.num_blocks
        assert m.budget.in_use == 0

    @given(st.lists(st.text(alphabet="abcz", max_size=8), max_size=300))
    @settings(max_examples=30, deadline=None)
    def test_property_sorts_any_input(self, words):
        m = machine(B=8, m=6)
        out = external_string_sort(m, FileStream.from_records(m, words))
        assert list(out) == sorted(words)

    @given(st.lists(st.text(max_size=6), max_size=150))
    @settings(max_examples=20, deadline=None)
    def test_property_unicode(self, words):
        m = machine(B=8, m=6)
        out = external_string_sort(m, FileStream.from_records(m, words))
        assert list(out) == sorted(words)

"""Tests for the closed-form I/O bounds."""

import math

import pytest

from repro.core import (
    ConfigurationError,
    merge_passes,
    output_io,
    permute_io,
    scan_io,
    search_io,
    sort_io,
    transpose_io,
)
from repro.core.bounds import buffer_tree_amortized_io, list_ranking_io


class TestScan:
    def test_exact_blocks(self):
        assert scan_io(64, 8) == 8

    def test_partial_block_rounds_up(self):
        assert scan_io(65, 8) == 9

    def test_zero_records(self):
        assert scan_io(0, 8) == 0

    def test_parallel_disks_divide(self):
        assert scan_io(64, 8, D=4) == 2

    def test_parallel_disks_round_up_twice(self):
        # 65 records -> 9 blocks -> ceil(9/4) = 3 rounds of D=4 disks:
        # both the block count and the stripe count round up.
        assert scan_io(65, 8, D=4) == 3

    def test_parallel_disks_never_below_one_round(self):
        assert scan_io(1, 8, D=64) == 1

    def test_more_disks_never_hurt(self):
        costs = [scan_io(1000, 8, D=d) for d in (1, 2, 4, 8)]
        assert costs == sorted(costs, reverse=True)
        assert scan_io(0, 8, D=8) == 0

    def test_single_record(self):
        assert scan_io(1, 8) == 1


class TestMergePasses:
    def test_fits_in_memory_single_pass(self):
        assert merge_passes(100, M=128, B=8) == 1

    def test_empty_input_zero_passes(self):
        assert merge_passes(0, M=128, B=8) == 0

    def test_one_merge_pass(self):
        # N=1024, M=128 -> 8 runs; fan-in m-1 = 15 merges them in one pass.
        assert merge_passes(1024, M=128, B=8) == 2

    def test_two_merge_passes(self):
        # N=16384, M=128 -> 128 runs; fan-in 15 -> 9 runs -> 1 run.
        assert merge_passes(16384, M=128, B=8) == 3

    def test_binary_fan_in_needs_more_passes(self):
        n, M, B = 16384, 128, 8
        assert merge_passes(n, M, B, fan_in=2) > merge_passes(n, M, B)

    def test_fan_in_override_exact_counts(self):
        # N=16384, M=128 -> 128 runs.  fan_in=2: 128->64->...->1 is 7
        # merge levels (+1 run-formation pass); fan_in=128 finishes in one.
        assert merge_passes(16384, 128, 8, fan_in=2) == 8
        assert merge_passes(16384, 128, 8, fan_in=128) == 2

    def test_fan_in_zero_means_default(self):
        assert merge_passes(16384, 128, 8, fan_in=0) == merge_passes(
            16384, 128, 8)

    def test_larger_fan_in_never_needs_more_passes(self):
        n, M, B = 1 << 18, 128, 8
        passes = [merge_passes(n, M, B, fan_in=f) for f in (2, 4, 8, 15)]
        assert passes == sorted(passes, reverse=True)

    def test_single_record_is_one_pass(self):
        assert merge_passes(1, M=128, B=8) == 1

    def test_passes_grow_logarithmically(self):
        M, B = 64, 8
        p1 = merge_passes(1 << 10, M, B)
        p2 = merge_passes(1 << 16, M, B)
        p3 = merge_passes(1 << 22, M, B)
        assert p1 < p2 < p3
        # doubling the exponent roughly doubles the number of merge passes
        assert (p3 - 1) <= 2 * (p2 - 1)


class TestSort:
    def test_sort_is_passes_times_full_scans(self):
        N, M, B = 1024, 128, 8
        assert sort_io(N, M, B) == 2 * scan_io(N, B) * merge_passes(N, M, B)

    def test_zero(self):
        assert sort_io(0, 128, 8) == 0

    def test_fits_in_memory_single_pass(self):
        # N <= M: one run-formation pass, i.e. read + write the input once.
        assert sort_io(100, M=128, B=8) == 2 * scan_io(100, 8)

    def test_fan_in_override_propagates(self):
        N, M, B = 16384, 128, 8
        assert sort_io(N, M, B, fan_in=2) == (
            2 * scan_io(N, B) * merge_passes(N, M, B, fan_in=2))

    def test_parallel_disks_divide_each_pass(self):
        N, M, B = 16384, 128, 8
        assert sort_io(N, M, B, D=4) == (
            2 * scan_io(N, B, D=4) * merge_passes(N, M, B))

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            sort_io(100, M=4, B=8)  # M < B


class TestSearchOutput:
    def test_search_is_btree_height(self):
        assert search_io(10**6, B=100) == 3

    def test_search_minimum_one(self):
        assert search_io(1, B=100) == 1

    def test_output_adds_reporting_scans(self):
        assert output_io(10**6, B=100, Z=1000) == 3 + 10

    def test_empty_structures_still_cost_the_root_probe(self):
        assert search_io(0, B=100) == 1
        assert output_io(0, B=100, Z=0) == 1


class TestPermute:
    def test_small_blocks_favour_naive(self):
        # With B=1 sorting can't beat one I/O per record... both equal N.
        N = 1024
        assert permute_io(N, M=4, B=1) <= N

    def test_large_blocks_favour_sorting(self):
        N, M, B = 1 << 16, 1 << 10, 64
        assert permute_io(N, M, B) == sort_io(N, M, B) < N

    def test_never_exceeds_either_branch(self):
        for exp in range(8, 20, 2):
            N = 1 << exp
            p = permute_io(N, M=256, B=16)
            assert p <= N
            assert p <= sort_io(N, 256, 16)


class TestTranspose:
    def test_matrix_fitting_in_memory_is_one_scan_factor(self):
        # p=q=16, B=16, M=256: min(M,p,q,N/B)=16, m=16 -> factor 1
        assert transpose_io(16, 16, M=256, B=16) == scan_io(256, 16)

    def test_factor_grows_for_large_matrices(self):
        small = transpose_io(32, 32, M=256, B=16)
        large = transpose_io(1024, 1024, M=256, B=16)
        assert large / scan_io(1024 * 1024, 16) >= small / scan_io(1024, 16)

    def test_zero_matrix(self):
        assert transpose_io(0, 5, M=64, B=8) == 0


class TestAmortizedBounds:
    def test_buffer_tree_amortized_well_below_one(self):
        per_op = buffer_tree_amortized_io(1 << 20, M=1 << 12, B=64)
        assert 0 < per_op < 1

    def test_buffer_tree_zero(self):
        assert buffer_tree_amortized_io(0, M=64, B=8) == 0.0

    def test_list_ranking_equals_sort(self):
        assert list_ranking_io(4096, 256, 16) == sort_io(4096, 256, 16)

    def test_zero_records_cost_nothing(self):
        assert permute_io(0, 64, 8) == 0
        assert list_ranking_io(0, 64, 8) == 0

"""Self-tests for the EM-lint compliance analyzer.

Each rule gets a pair of fixtures: a snippet that must fire the rule and
a snippet (or a waiver) that must not.  Fixtures are linted through
:func:`lint_source`, whose default path classifies them as ``algorithm``
modules (all rules active).
"""

import textwrap
from pathlib import Path

import pytest

from repro.analysis import RULES, Finding, lint_paths, lint_source, unwaived
from repro.analysis.emlint import Waiver, classify, parse_waivers

REPO_ROOT = Path(__file__).resolve().parents[1]


def lint(snippet, **kwargs):
    return lint_source(textwrap.dedent(snippet), **kwargs)


def fired(findings):
    """Rules that fired, waived or not."""
    return {f.rule for f in findings}


def open_rules(findings):
    return {f.rule for f in unwaived(findings)}


class TestEM001Materialization:
    def test_list_of_stream_param_fires(self):
        findings = lint(
            """
            def _drain(machine, stream):
                return list(stream)
            """
        )
        assert fired(findings) == {"EM001"}

    def test_sorted_of_stream_fires_em001_not_em004(self):
        findings = lint(
            """
            def _drain(machine, stream):
                return sorted(stream)
            """
        )
        assert fired(findings) == {"EM001"}

    def test_stream_assigned_from_library_sort_is_tracked(self):
        findings = lint(
            """
            def _helper(machine, records):
                ordered = external_merge_sort(machine, records)
                return set(ordered)
            """
        )
        assert fired(findings) == {"EM001"}

    def test_materializing_a_plain_list_is_fine(self):
        findings = lint(
            """
            def _helper(machine, values):
                return list(values)
            """
        )
        assert "EM001" not in fired(findings)


class TestEM002RawIO:
    def test_builtin_open_fires(self):
        findings = lint(
            """
            def _load(machine, path):
                with open(path) as handle:
                    return handle.read()
            """
        )
        assert "EM002" in fired(findings)

    def test_os_layer_fires(self):
        findings = lint(
            """
            import os

            def _load(machine, fd):
                return os.read(fd, 4096)
            """
        )
        assert "EM002" in fired(findings)

    def test_em002_applies_even_in_core_modules(self):
        findings = lint(
            """
            def helper(path):
                return open(path)
            """,
            kind="core",
        )
        assert fired(findings) == {"EM002"}

    def test_blockfile_usage_is_fine(self):
        findings = lint(
            """
            def _load(machine, name):
                return FileStream(machine, name=name)
            """
        )
        assert "EM002" not in fired(findings)


class TestEM003PublicSignature:
    def test_missing_machine_and_missing_bound_both_fire(self):
        findings = lint(
            """
            def run(records):
                return records
            """
        )
        em003 = [f for f in findings if f.rule == "EM003"]
        assert len(em003) == 2

    def test_machine_first_with_declared_bound_is_clean(self):
        findings = lint(
            '''
            def run(machine, records):
                """Scan the records in O(N/B) I/Os."""
                return records
            '''
        )
        assert "EM003" not in fired(findings)

    def test_machine_carrier_annotation_satisfies_signature(self):
        findings = lint(
            '''
            def run(table: Table, column):
                """One scan of the table."""
                return column
            '''
        )
        assert "EM003" not in fired(findings)

    def test_private_and_nested_functions_are_exempt(self):
        findings = lint(
            """
            def _internal(records):
                def inner(more):
                    return more
                return inner(records)
            """
        )
        assert "EM003" not in fired(findings)


class TestEM004PythonSort:
    def test_sorted_fires(self):
        findings = lint(
            """
            def _pick(machine, values):
                return sorted(values)
            """
        )
        assert fired(findings) == {"EM004"}

    def test_method_sort_fires(self):
        findings = lint(
            """
            def _pick(machine, values):
                values.sort()
                return values
            """
        )
        assert fired(findings) == {"EM004"}

    def test_core_modules_may_sort(self):
        findings = lint(
            """
            def helper(values):
                return sorted(values)
            """,
            kind="core",
        )
        assert "EM004" not in fired(findings)


class TestEM005UnbudgetedAccumulation:
    def test_append_in_stream_loop_fires(self):
        findings = lint(
            """
            def _collect(machine, stream):
                out = []
                for record in stream:
                    out.append(record)
                return out
            """
        )
        assert fired(findings) == {"EM005"}

    def test_subscript_assignment_in_stream_loop_fires(self):
        findings = lint(
            """
            def _index(machine, stream):
                table = {}
                for key, value in stream:
                    table[key] = value
                return table
            """
        )
        assert fired(findings) == {"EM005"}

    def test_comprehension_over_stream_fires(self):
        findings = lint(
            """
            def _collect(machine, stream):
                return [record for record in stream]
            """
        )
        assert fired(findings) == {"EM005"}

    def test_budget_reserve_suppresses(self):
        findings = lint(
            """
            def _collect(machine, stream):
                out = []
                with machine.budget.reserve(16):
                    for record in stream:
                        out.append(record)
                return out
            """
        )
        assert "EM005" not in fired(findings)

    def test_manual_acquire_suppresses(self):
        findings = lint(
            """
            def _collect(machine, stream):
                out = []
                for record in stream:
                    machine.budget.acquire(1)
                    out.append(record)
                return out
            """
        )
        assert "EM005" not in fired(findings)

    def test_appending_to_charged_sink_is_fine(self):
        findings = lint(
            """
            def _route(machine, stream):
                out = FileStream(machine, name="x")
                for record in stream:
                    out.append(record)
                return out
            """
        )
        assert "EM005" not in fired(findings)

    def test_loop_over_plain_sequence_is_fine(self):
        findings = lint(
            """
            def _collect(machine, values):
                out = []
                for value in values:
                    out.append(value)
                return out
            """
        )
        assert "EM005" not in fired(findings)


class TestEM006PrivateMachinery:
    def test_machine_construction_fires(self):
        findings = lint(
            """
            def _cheat(machine, records):
                shadow = Machine(block_size=8, memory_blocks=4)
                return shadow
            """
        )
        assert fired(findings) == {"EM006"}

    def test_buffer_pool_construction_fires(self):
        findings = lint(
            """
            def _cheat(machine):
                return BufferPool(machine.disk, 4)
            """
        )
        assert fired(findings) == {"EM006"}

    def test_using_the_callers_machine_is_fine(self):
        findings = lint(
            """
            def _ok(machine, records):
                return machine.stats()
            """
        )
        assert "EM006" not in fired(findings)


class TestWaivers:
    def test_inline_waiver_suppresses_and_keeps_reason(self):
        findings = lint(
            """
            def _pick(machine, values):
                return sorted(values)  # em: ok(EM004) bounded to M records
            """
        )
        (finding,) = findings
        assert finding.rule == "EM004"
        assert finding.waived
        assert finding.waiver_reason == "bounded to M records"
        assert unwaived(findings) == []

    def test_standalone_waiver_covers_next_statement(self):
        findings = lint(
            """
            def _pick(machine, values):
                # em: ok(EM004) bounded to M records
                return sorted(values)
            """
        )
        assert open_rules(findings) == set()
        assert fired(findings) == {"EM004"}

    def test_two_line_standalone_waiver_skips_comment_lines(self):
        findings = lint(
            """
            def _pick(machine, values):
                # em: ok(EM004) bounded to M records,
                # reserved by the caller before entry
                return sorted(values)
            """
        )
        assert open_rules(findings) == set()

    def test_multi_rule_waiver(self):
        findings = lint(
            """
            def _drain(machine, stream):
                # em: ok(EM001, EM004) bounded base case under reserve
                return sorted(list(stream))
            """
        )
        assert open_rules(findings) == set()
        assert fired(findings) == {"EM001", "EM004"}

    def test_multi_rule_waiver_usage_is_per_rule_id(self):
        # Only EM001 fires on the covered line, so the EM004 entry of
        # the waiver suppresses nothing and must be flagged (EM007) —
        # usage is tracked per rule id, not per comment.
        findings = lint(
            """
            def _drain(machine, stream):
                # em: ok(EM001, EM004) bounded base case under reserve
                return list(stream)
            """
        )
        assert open_rules(findings) == {"EM007"}
        [em007] = [f for f in unwaived(findings) if f.rule == "EM007"]
        assert "EM004" in em007.message
        assert "suppresses nothing" in em007.message

    def test_wildcard_waiver(self):
        findings = lint(
            """
            def _cheat(machine, values):
                return sorted(values)  # em: ok(*) test fixture, anything goes
            """
        )
        assert open_rules(findings) == set()

    def test_waiver_does_not_leak_to_other_lines(self):
        findings = lint(
            """
            def _pick(machine, values):
                first = sorted(values)  # em: ok(EM004) bounded
                second = sorted(values)
                return first + second
            """
        )
        assert len(unwaived(findings)) == 1

    def test_waiver_for_wrong_rule_does_not_suppress(self):
        findings = lint(
            """
            def _pick(machine, values):
                return sorted(values)  # em: ok(EM001) wrong rule id
            """
        )
        # The EM004 stays open AND the EM001 waiver is flagged unused.
        assert open_rules(findings) == {"EM004", "EM007"}


class TestEM007WaiverHygiene:
    def test_malformed_waiver_fires(self):
        findings = lint(
            """
            def _pick(machine, values):
                return values  # em: ok EM004 forgot the parens
            """
        )
        assert fired(findings) == {"EM007"}

    def test_unknown_rule_id_fires(self):
        findings = lint(
            """
            def _pick(machine, values):
                return sorted(values)  # em: ok(EM999) no such rule
            """
        )
        assert "EM007" in open_rules(findings)

    def test_missing_reason_fires(self):
        findings = lint(
            """
            def _pick(machine, values):
                return sorted(values)  # em: ok(EM004)
            """
        )
        assert "EM007" in open_rules(findings)

    def test_unused_waiver_fires(self):
        findings = lint(
            """
            def _pick(machine, values):
                return values  # em: ok(EM004) suppresses nothing here
            """
        )
        assert open_rules(findings) == {"EM007"}

    def test_syntax_error_reports_em007(self):
        findings = lint("def broken(:\n")
        assert [f.rule for f in findings] == ["EM007"]

    def test_parse_waivers_extracts_rules_and_reason(self):
        waivers, hygiene = parse_waivers(
            "x = 1  # em: ok(EM004, EM005) two rules, one reason\n",
            path="<string>",
        )
        (waiver,) = waivers
        assert set(waiver.rules) == {"EM004", "EM005"}
        assert waiver.reason == "two rules, one reason"
        assert hygiene == []


class TestClassification:
    @pytest.mark.parametrize(
        "path,kind",
        [
            ("src/repro/analysis/emlint.py", "exempt"),
            ("src/repro/core/machine.py", "core"),
            ("src/repro/workloads.py", "support"),
            ("tests/conftest.py", "support"),
            ("src/repro/sort/merge.py", "algorithm"),
            ("<string>", "algorithm"),
        ],
    )
    def test_classify(self, path, kind):
        assert classify(path) == kind

    def test_exempt_modules_produce_no_findings(self):
        findings = lint(
            """
            def anything_goes(values):
                return sorted(open("x").read())
            """,
            kind="exempt",
        )
        assert findings == []

    def test_rule_table_is_complete(self):
        assert sorted(RULES) == [
            "EM001", "EM002", "EM003", "EM004", "EM005", "EM006", "EM007",
        ]


class TestFindingRendering:
    def test_render_and_to_dict_round_trip(self):
        findings = lint(
            """
            def _pick(machine, values):
                return sorted(values)
            """
        )
        (finding,) = findings
        text = finding.render()
        assert "EM004" in text and "<string>" in text
        payload = finding.to_dict()
        assert payload["rule"] == "EM004"
        assert payload["line"] == finding.line


class TestWholeTree:
    def test_library_is_lint_clean(self):
        """The acceptance gate: zero unwaived findings across src/repro."""
        findings = lint_paths([str(REPO_ROOT / "src" / "repro")])
        remaining = unwaived(findings)
        assert remaining == [], "\n".join(f.render() for f in remaining)

    def test_every_waiver_in_tree_has_a_reason(self):
        findings = lint_paths([str(REPO_ROOT / "src" / "repro")])
        for finding in findings:
            if finding.waived:
                assert finding.waiver_reason


class TestCLI:
    def test_clean_path_exits_zero(self, capsys):
        from repro.analysis.cli import main

        code = main([str(REPO_ROOT / "src" / "repro" / "sort")])
        out = capsys.readouterr().out
        assert code == 0
        assert "0 unwaived" in out

    def test_dirty_file_exits_one(self, tmp_path, capsys):
        from repro.analysis.cli import main

        bad = tmp_path / "algo.py"
        bad.write_text("def run(records):\n    return sorted(records)\n")
        code = main([str(bad)])
        out = capsys.readouterr().out
        assert code == 1
        assert "EM004" in out

    def test_json_format(self, tmp_path, capsys):
        import json

        from repro.analysis.cli import main

        bad = tmp_path / "algo.py"
        bad.write_text("values.sort()\n")
        code = main(["--format", "json", str(bad)])
        payload = json.loads(capsys.readouterr().out)
        assert code == 1
        assert any(entry["rule"] == "EM004" for entry in payload)

    def test_nonexistent_path_is_a_usage_error(self, capsys):
        from repro.analysis.cli import main

        with pytest.raises(SystemExit) as excinfo:
            main(["/no/such/path"])
        assert excinfo.value.code == 2
        assert "no such file or directory" in capsys.readouterr().err

    def test_list_rules(self, capsys):
        from repro.analysis.cli import main

        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in RULES:
            assert rule in out

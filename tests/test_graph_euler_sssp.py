"""Tests for Euler-tour tree labelling and external Dijkstra."""

import collections
import heapq
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ConfigurationError, Machine
from repro.graph import (
    AdjacencyStore,
    build_euler_tour,
    external_dijkstra,
    semi_external_dijkstra,
    tree_depths,
    weighted_list_ranking,
)
from repro.workloads import connected_random_graph


def machine(B=16, m=8):
    return Machine(block_size=B, memory_blocks=m)


def random_tree(n, seed=0):
    rng = random.Random(seed)
    edges = [(rng.randrange(v), v) for v in range(1, n)]
    rng.shuffle(edges)
    return edges


def reference_depths(n, edges, root):
    adjacency = collections.defaultdict(list)
    for u, v in edges:
        adjacency[u].append(v)
        adjacency[v].append(u)
    depth, parent = {root: 0}, {root: -1}
    queue = collections.deque([root])
    while queue:
        x = queue.popleft()
        for y in adjacency[x]:
            if y not in depth:
                depth[y] = depth[x] + 1
                parent[y] = x
                queue.append(y)
    return depth, parent


class TestWeightedListRanking:
    def test_prefix_sums(self):
        m = machine()
        triples = [(0, 1, 5), (1, 2, -2), (2, -1, 7)]
        assert weighted_list_ranking(m, triples) == {0: 0, 1: 5, 2: 3}

    def test_unit_weights_match_list_ranking(self):
        from repro.graph import list_ranking
        from repro.workloads import random_linked_list

        pairs = random_linked_list(300, seed=1)
        m1, m2 = machine(), machine()
        assert weighted_list_ranking(
            m1, [(a, b, 1) for a, b in pairs]
        ) == list_ranking(m2, pairs)


class TestEulerTour:
    def test_tour_covers_all_arcs_once(self):
        m = machine()
        edges = random_tree(40, seed=2)
        pairs, endpoints = build_euler_tour(m, 40, edges, root=0)
        assert len(pairs) == 78  # 2(n-1)
        successor = dict(pairs)
        tails = [a for a, s in pairs if s == -1]
        assert len(tails) == 1
        heads = set(successor) - set(successor.values())
        node = heads.pop()
        seen = []
        while node != -1:
            seen.append(node)
            node = successor[node]
        assert sorted(seen) == sorted(endpoints)

    def test_non_tree_edge_count_rejected(self):
        m = machine()
        with pytest.raises(ConfigurationError):
            build_euler_tour(m, 3, [(0, 1)], root=0)

    def test_self_loop_rejected(self):
        m = machine()
        with pytest.raises(ConfigurationError):
            build_euler_tour(m, 2, [(0, 0)], root=0)


class TestTreeDepths:
    @pytest.mark.parametrize("n,root", [(2, 0), (5, 0), (60, 3), (500, 7)])
    def test_matches_bfs(self, n, root):
        m = machine()
        edges = random_tree(n, seed=n)
        depths, parents = tree_depths(m, n, edges, root=root)
        ref_d, ref_p = reference_depths(n, edges, root)
        assert depths == ref_d
        assert parents == ref_p

    def test_single_vertex(self):
        m = machine()
        assert tree_depths(m, 1, [], root=0) == ({0: 0}, {0: -1})

    def test_path_tree(self):
        m = machine()
        edges = [(i, i + 1) for i in range(99)]
        depths, parents = tree_depths(m, 100, edges, root=0)
        assert depths == {i: i for i in range(100)}
        assert parents[50] == 49

    def test_star_tree(self):
        m = machine()
        edges = [(0, i) for i in range(1, 50)]
        depths, _ = tree_depths(m, 50, edges, root=0)
        assert depths[0] == 0
        assert all(depths[i] == 1 for i in range(1, 50))

    @given(st.integers(2, 150), st.integers(0, 10**6))
    @settings(max_examples=20, deadline=None)
    def test_property_matches_bfs(self, n, seed):
        m = machine(B=8, m=8)
        edges = random_tree(n, seed=seed)
        root = seed % n
        depths, parents = tree_depths(m, n, edges, root=root)
        ref_d, ref_p = reference_depths(n, edges, root)
        assert depths == ref_d
        assert parents == ref_p


def weighted_graph(n, avg_degree, seed):
    _, edges = connected_random_graph(n, avg_degree, seed=seed)
    rng = random.Random(seed + 1)
    return [(u, v, rng.randint(1, 20)) for u, v in edges]


def reference_dijkstra(n, weighted_edges, source):
    adjacency = collections.defaultdict(list)
    for u, v, w in weighted_edges:
        adjacency[u].append((v, w))
        adjacency[v].append((u, w))
    dist = {}
    heap = [(0, source)]
    while heap:
        d, x = heapq.heappop(heap)
        if x in dist:
            continue
        dist[x] = d
        for y, w in adjacency[x]:
            if y not in dist:
                heapq.heappush(heap, (d + w, y))
    return dist


class TestDijkstra:
    @pytest.mark.parametrize("fn", [external_dijkstra,
                                    semi_external_dijkstra])
    def test_matches_reference(self, fn):
        m = machine(m=16)
        wedges = weighted_graph(300, 4, seed=5)
        adjacency = AdjacencyStore.from_weighted_edges(m, 300, wedges)
        assert fn(m, adjacency, 0) == reference_dijkstra(300, wedges, 0)

    @pytest.mark.parametrize("fn", [external_dijkstra,
                                    semi_external_dijkstra])
    def test_disconnected(self, fn):
        m = machine(m=16)
        adjacency = AdjacencyStore.from_weighted_edges(
            m, 4, [(0, 1, 3), (2, 3, 4)]
        )
        assert fn(m, adjacency, 0) == {0: 0, 1: 3}

    def test_unit_weights_match_bfs_distances(self):
        from repro.graph import mr_bfs

        m = machine(m=16)
        _, edges = connected_random_graph(200, seed=6)
        weighted = AdjacencyStore.from_weighted_edges(
            m, 200, [(u, v, 1) for u, v in edges]
        )
        unweighted = AdjacencyStore.from_edges(m, 200, edges)
        assert external_dijkstra(m, weighted, 0) == mr_bfs(
            m, unweighted, 0
        )

    def test_negative_weight_rejected(self):
        m = machine(m=16)
        adjacency = AdjacencyStore.from_weighted_edges(
            m, 2, [(0, 1, -5)]
        )
        with pytest.raises(ConfigurationError):
            external_dijkstra(m, adjacency, 0)

    def test_bad_source_rejected(self):
        m = machine(m=16)
        adjacency = AdjacencyStore.from_weighted_edges(m, 2, [(0, 1, 1)])
        with pytest.raises(ConfigurationError):
            external_dijkstra(m, adjacency, 5)

    def test_parallel_edges_take_cheapest(self):
        m = machine(m=16)
        adjacency = AdjacencyStore.from_weighted_edges(
            m, 2, [(0, 1, 9), (0, 1, 2)]
        )
        assert external_dijkstra(m, adjacency, 0)[1] == 2

    @given(st.integers(2, 120), st.integers(0, 10**6))
    @settings(max_examples=15, deadline=None)
    def test_property_matches_reference(self, n, seed):
        m = machine(B=8, m=16)
        wedges = weighted_graph(n, 3, seed=seed)
        adjacency = AdjacencyStore.from_weighted_edges(m, n, wedges)
        assert external_dijkstra(m, adjacency, 0) == reference_dijkstra(
            n, wedges, 0
        )

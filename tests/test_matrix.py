"""Tests for external matrix operations."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ConfigurationError, Machine
from repro.matrix import (
    ExternalMatrix,
    multiply_blocked,
    multiply_naive,
    transpose_blocked,
    transpose_by_sort,
    transpose_naive,
)


def machine(B=8, m=16):
    return Machine(block_size=B, memory_blocks=m)


def sample(machine_, rows, cols):
    return ExternalMatrix.from_function(
        machine_, rows, cols, lambda i, j: i * 1000 + j
    )


class TestExternalMatrix:
    def test_from_rows_round_trip(self):
        m = machine()
        data = [[1, 2, 3], [4, 5, 6]]
        mat = ExternalMatrix.from_rows(m, data)
        assert mat.to_rows() == data

    def test_from_function(self):
        m = machine()
        mat = ExternalMatrix.from_function(m, 3, 4, lambda i, j: i - j)
        assert mat.to_rows() == [[i - j for j in range(4)] for i in range(3)]

    def test_get_entry(self):
        m = machine()
        mat = sample(m, 5, 7)
        assert mat.get(2, 3) == 2003
        assert mat.get(4, 6) == 4006

    def test_get_out_of_range(self):
        m = machine()
        mat = sample(m, 2, 2)
        with pytest.raises(ConfigurationError):
            mat.get(2, 0)

    def test_ragged_rows_rejected(self):
        m = machine()
        with pytest.raises(ConfigurationError):
            ExternalMatrix.from_rows(m, [[1, 2], [3]])

    def test_zero_dims_rejected(self):
        with pytest.raises(ConfigurationError):
            ExternalMatrix(machine(), 0, 5)

    def test_read_tile(self):
        m = machine()
        mat = sample(m, 8, 8)
        tile = mat.read_tile(2, 5, 3, 6)
        assert tile == [
            [i * 1000 + j for j in range(3, 6)] for i in range(2, 5)
        ]

    def test_delete_frees_blocks(self):
        m = machine()
        mat = sample(m, 8, 8)
        before = m.disk.allocated_blocks
        mat.delete()
        assert m.disk.allocated_blocks < before


class TestTranspose:
    @pytest.mark.parametrize(
        "fn", [transpose_naive, transpose_blocked, transpose_by_sort]
    )
    def test_correctness_aligned(self, fn):
        m = machine()
        mat = sample(m, 16, 24)  # multiples of B=8
        result = fn(m, mat)
        assert result.rows == 24 and result.cols == 16
        assert result.to_rows() == np.array(mat.to_rows()).T.tolist()

    @pytest.mark.parametrize("fn", [transpose_naive, transpose_by_sort])
    def test_correctness_unaligned(self, fn):
        m = machine()
        mat = sample(m, 5, 13)
        result = fn(m, mat)
        assert result.to_rows() == np.array(mat.to_rows()).T.tolist()

    def test_blocked_falls_back_when_unaligned(self):
        m = machine()
        mat = sample(m, 5, 13)
        result = transpose_blocked(m, mat)
        assert result.to_rows() == np.array(mat.to_rows()).T.tolist()

    def test_square_involution(self):
        m = machine()
        mat = sample(m, 16, 16)
        twice = transpose_blocked(m, transpose_blocked(m, mat))
        assert twice.to_rows() == mat.to_rows()

    def test_blocked_io_is_two_passes(self):
        m = machine(B=8, m=16)
        mat = sample(m, 32, 32)  # 128 blocks
        m.reset_stats()
        transpose_blocked(m, mat)
        stats = m.stats()
        blocks = 32 * 32 // 8
        assert stats.reads == blocks
        assert stats.writes == blocks

    def test_blocked_beats_naive_on_large_matrix(self):
        # m=16 so a B x B tile fits in memory (the one-scan regime).
        m1 = machine(B=8, m=16)
        mat1 = sample(m1, 64, 64)
        m1.reset_stats()
        transpose_blocked(m1, mat1)
        blocked = m1.stats().total
        m2 = machine(B=8, m=16)
        mat2 = sample(m2, 64, 64)
        m2.reset_stats()
        transpose_naive(m2, mat2)
        naive = m2.stats().total
        assert blocked == 2 * (64 * 64) // 8  # exactly two passes
        assert blocked * 3 < naive

    def test_tile_too_big_falls_back_to_sort(self):
        """When B^2 > M the one-scan regime is impossible; the blocked
        transpose must fall back to the sort-based permutation and still
        be correct."""
        m = machine(B=8, m=6)  # M = 48 < B^2 = 64
        mat = sample(m, 16, 16)
        result = transpose_blocked(m, mat)
        assert result.to_rows() == np.array(mat.to_rows()).T.tolist()

    @given(st.integers(1, 20), st.integers(1, 20))
    @settings(max_examples=25, deadline=None)
    def test_property_by_sort_any_shape(self, p, q):
        m = machine(B=4, m=8)
        mat = ExternalMatrix.from_function(m, p, q, lambda i, j: 31 * i + j)
        result = transpose_by_sort(m, mat)
        assert result.to_rows() == np.array(mat.to_rows()).T.tolist()


class TestMultiply:
    def test_small_known_product(self):
        m = machine()
        a = ExternalMatrix.from_rows(m, [[1, 2], [3, 4]])
        b = ExternalMatrix.from_rows(m, [[5, 6], [7, 8]])
        assert multiply_blocked(m, a, b).to_rows() == [[19, 22], [43, 50]]
        assert multiply_naive(m, a, b).to_rows() == [[19, 22], [43, 50]]

    def test_identity_product(self):
        m = machine()
        a = sample(m, 8, 8)
        eye = ExternalMatrix.from_function(
            m, 8, 8, lambda i, j: 1 if i == j else 0
        )
        assert multiply_blocked(m, a, eye).to_rows() == a.to_rows()

    def test_dimension_mismatch_rejected(self):
        m = machine()
        a = sample(m, 3, 4)
        b = sample(m, 5, 3)
        with pytest.raises(ConfigurationError):
            multiply_blocked(m, a, b)
        with pytest.raises(ConfigurationError):
            multiply_naive(m, a, b)

    @pytest.mark.parametrize("dims", [(6, 7, 5), (12, 9, 11), (1, 8, 1)])
    def test_matches_numpy(self, dims):
        p, q, r = dims
        m = machine()
        a = ExternalMatrix.from_function(m, p, q, lambda i, j: (i + 2 * j) % 7)
        b = ExternalMatrix.from_function(m, q, r, lambda i, j: (3 * i - j) % 5)
        expected = (np.array(a.to_rows()) @ np.array(b.to_rows())).tolist()
        assert multiply_blocked(m, a, b).to_rows() == expected
        assert multiply_naive(m, a, b).to_rows() == expected

    def test_blocked_beats_naive_io(self):
        m1 = machine(B=8, m=8)
        a1, b1 = sample(m1, 24, 24), sample(m1, 24, 24)
        m1.reset_stats()
        multiply_blocked(m1, a1, b1)
        blocked = m1.stats().total
        m2 = machine(B=8, m=8)
        a2, b2 = sample(m2, 24, 24), sample(m2, 24, 24)
        m2.reset_stats()
        multiply_naive(m2, a2, b2)
        naive = m2.stats().total
        assert blocked < naive

    def test_explicit_tile_size(self):
        m = machine(m=32)
        a = sample(m, 10, 10)
        b = sample(m, 10, 10)
        expected = (np.array(a.to_rows()) @ np.array(b.to_rows())).tolist()
        assert multiply_blocked(m, a, b, tile=3).to_rows() == expected

    def test_oversized_tile_rejected(self):
        m = machine(B=8, m=4)
        a = sample(m, 8, 8)
        b = sample(m, 8, 8)
        with pytest.raises(ConfigurationError):
            multiply_blocked(m, a, b, tile=100)

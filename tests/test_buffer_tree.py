"""Tests for the buffer tree."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ConfigurationError, FileStream, Machine, sort_io
from repro.buffer import BufferTree, buffer_tree_sort
from repro.workloads import distinct_ints


def machine(B=16, m=16):
    return Machine(block_size=B, memory_blocks=m)


class TestInsertOnly:
    def test_items_sorted_after_flush(self):
        m = machine()
        tree = BufferTree(m)
        keys = distinct_ints(2000, seed=1)
        for k in keys:
            tree.insert(k, k)
        assert [k for k, _ in tree.items()] == sorted(keys)

    def test_upsert_latest_value_wins(self):
        m = machine()
        tree = BufferTree(m)
        tree.insert(7, "old")
        tree.insert(7, "new")
        assert dict(tree.items()) == {7: "new"}

    def test_empty_tree(self):
        m = machine()
        tree = BufferTree(m)
        assert list(tree.items()) == []
        tree.check_invariants()

    def test_len_after_flush(self):
        m = machine()
        tree = BufferTree(m)
        for k in range(1000):
            tree.insert(k, k)
        tree.flush()
        assert len(tree) == 1000

    def test_tree_grows_beyond_one_leaf(self):
        m = machine()
        tree = BufferTree(m)
        for k in distinct_ints(4000, seed=2):
            tree.insert(k, k)
        tree.flush()
        assert tree.height >= 2
        tree.check_invariants()

    def test_invariants_under_random_keys(self):
        m = machine()
        tree = BufferTree(m)
        for k in distinct_ints(2500, seed=3):
            tree.insert(k, str(k))
        tree.check_invariants()


class TestDeletesAndQueries:
    def test_delete_removes_key(self):
        m = machine()
        tree = BufferTree(m)
        for k in range(500):
            tree.insert(k, k)
        for k in range(0, 500, 2):
            tree.delete(k)
        assert [k for k, _ in tree.items()] == list(range(1, 500, 2))

    def test_delete_absent_key_is_noop(self):
        m = machine()
        tree = BufferTree(m)
        tree.insert(1, "a")
        tree.delete(999)
        assert dict(tree.items()) == {1: "a"}

    def test_insert_after_delete_revives_key(self):
        m = machine()
        tree = BufferTree(m)
        tree.insert(5, "first")
        tree.delete(5)
        tree.insert(5, "second")
        assert dict(tree.items()) == {5: "second"}

    def test_query_present_key(self):
        m = machine()
        tree = BufferTree(m)
        for k in range(300):
            tree.insert(k, k * 10)
        tree.query(42, token="the-answer")
        tree.flush()
        assert tree.query_results["the-answer"] == 420

    def test_query_absent_key_reports_none(self):
        m = machine()
        tree = BufferTree(m)
        tree.insert(1, "x")
        tree.query(2, token="missing")
        tree.flush()
        assert tree.query_results["missing"] is None

    def test_query_sees_state_at_its_sequence_point(self):
        """A query queued between an insert and a delete of the same key
        must see the insert (lazy semantics preserve operation order)."""
        m = machine()
        tree = BufferTree(m)
        tree.insert(9, "alive")
        tree.query(9, token="before")
        tree.delete(9)
        tree.query(9, token="after")
        tree.flush()
        assert tree.query_results["before"] == "alive"
        assert tree.query_results["after"] is None

    def test_query_default_token_is_key(self):
        m = machine()
        tree = BufferTree(m)
        tree.insert(3, "v")
        tree.query(3)
        tree.flush()
        assert tree.query_results[3] == "v"

    def test_mixed_workload_matches_dict(self):
        m = machine()
        tree = BufferTree(m)
        reference = {}
        rng = random.Random(7)
        for step in range(5000):
            k = rng.randrange(600)
            action = rng.random()
            if action < 0.6:
                tree.insert(k, step)
                reference[k] = step
            elif action < 0.9:
                tree.delete(k)
                reference.pop(k, None)
            else:
                tree.query(k, token=("q", step, k))
        tree.flush()
        assert dict(tree.items()) == reference
        tree.check_invariants()


class TestConfiguration:
    def test_too_small_machine_rejected(self):
        m = Machine(block_size=16, memory_blocks=3)
        with pytest.raises(ConfigurationError):
            BufferTree(m)

    def test_bad_fan_out_rejected(self):
        with pytest.raises(ConfigurationError):
            BufferTree(machine(), fan_out=1)

    def test_bad_leaf_capacity_rejected(self):
        with pytest.raises(ConfigurationError):
            BufferTree(machine(), leaf_capacity=1)

    def test_explicit_fan_out(self):
        m = machine(m=32)
        tree = BufferTree(m, fan_out=3, leaf_capacity=64)
        for k in distinct_ints(1000, seed=9):
            tree.insert(k, k)
        tree.check_invariants()
        assert tree.height >= 3


class TestIOBehaviour:
    def test_n_inserts_cost_less_than_n_ios(self):
        """The whole point: N batched inserts cost far fewer than N I/Os
        (the advantage scales with B, so measure at a realistic B)."""
        m = Machine(block_size=64, memory_blocks=16)
        tree = BufferTree(m)
        keys = distinct_ints(5000, seed=4)
        with m.measure() as io:
            for k in keys:
                tree.insert(k, k)
            tree.flush()
        assert io.total < len(keys) / 2
        assert io.total / len(keys) < 12 / m.B  # O((1/B)·log) regime

    def test_buffer_tree_sort_is_within_constant_of_sort_bound(self):
        m = machine()
        data = distinct_ints(5000, seed=5)
        stream = FileStream.from_records(m, data)
        with m.measure() as io:
            result = buffer_tree_sort(m, stream)
        assert list(result) == sorted(data)
        bound = sort_io(5000, m.M, m.B)
        assert io.total < 5 * bound

    def test_no_memory_leak_after_flush(self):
        m = machine()
        tree = BufferTree(m)
        for k in range(3000):
            tree.insert(k, k)
        tree.flush()
        # Only the root buffer's writer frame may remain reserved.
        assert m.budget.in_use <= m.B


class TestPropertyBased:
    @given(
        st.lists(
            st.tuples(st.sampled_from(["i", "d"]), st.integers(0, 60)),
            max_size=300,
        )
    )
    @settings(max_examples=25, deadline=None)
    def test_matches_dict_semantics(self, operations):
        m = machine(B=8, m=8)
        tree = BufferTree(m)
        reference = {}
        for kind, k in operations:
            if kind == "i":
                tree.insert(k, k * 3)
                reference[k] = k * 3
            else:
                tree.delete(k)
                reference.pop(k, None)
        assert dict(tree.items()) == reference

    @given(st.lists(st.integers(0, 10**6), unique=True, max_size=400))
    @settings(max_examples=25, deadline=None)
    def test_sort_property(self, data):
        m = machine(B=8, m=8)
        stream = FileStream.from_records(m, data)
        result = buffer_tree_sort(m, stream)
        assert list(result) == sorted(data)

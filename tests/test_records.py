"""Tests for typed block payloads (``repro.core.records``) and the
raw-speed bugfixes that ride on them: the single-copy ``DiskArray.write``
path, the canonical-bytes checksum (no ``repr`` elision collisions), and
type preservation through the buffer pool and torn-write paths.
"""

import random
from array import array
from typing import Any, Sequence

import numpy as np
import pytest

from repro.core import (
    BlockBuilder,
    BufferPool,
    DiskArray,
    Machine,
    argsort,
    canonical_bytes,
    concat,
    copy_payload,
    decode_block,
    encode_block,
    field,
    is_typed,
    key_column,
    key_list,
    take,
)
from repro.core.disk import block_checksum
from repro.core.stream import FileStream
from repro.faults.plan import FaultPlan


def machine(B=8, m=6, D=1):
    return Machine(block_size=B, memory_blocks=m, num_disks=D)


# ----------------------------------------------------------------------
# representation helpers
# ----------------------------------------------------------------------
class TestHelpers:
    @pytest.mark.parametrize("payload", [
        [3, 1, 2],
        array("i", [3, 1, 2]),
        np.array([3, 1, 2]),
    ])
    def test_copy_preserves_representation(self, payload):
        copied = copy_payload(payload)
        assert type(copied) is type(payload)
        assert list(copied) == list(payload)
        assert copied is not payload

    def test_copy_compacts_ndarray_views(self):
        base = np.arange(10)
        view = base[2:5]
        copied = copy_payload(view)
        base[3] = 99
        assert list(copied) == [2, 3, 4]
        assert copied.base is None  # owns its buffer

    def test_is_typed(self):
        assert is_typed(np.arange(3))
        assert is_typed(array("d", [1.0]))
        assert not is_typed([1, 2, 3])
        assert not is_typed((1, 2, 3))

    def test_concat_same_representation(self):
        assert concat([[1], [2, 3]]) == [1, 2, 3]
        out = concat([np.array([1, 2]), np.array([3])])
        assert isinstance(out, np.ndarray)
        assert out.tolist() == [1, 2, 3]
        out = concat([array("i", [1]), array("i", [2])])
        assert isinstance(out, array)
        assert out.tolist() == [1, 2]

    def test_concat_mixed_falls_back_to_list(self):
        assert concat([np.array([1]), [2]]) == [1, 2]
        assert concat([]) == []

    def test_take(self):
        assert take([10, 20, 30], [2, 0]) == [30, 10]
        out = take(np.array([10, 20, 30]), [2, 0])
        assert isinstance(out, np.ndarray)
        assert out.tolist() == [30, 10]
        out = take(array("i", [10, 20, 30]), [2, 0])
        assert isinstance(out, array)
        assert out.tolist() == [30, 10]

    @pytest.mark.parametrize("payload", [
        [5, 1, 4, 1, 3],
        array("i", [5, 1, 4, 1, 3]),
        np.array([5, 1, 4, 1, 3]),
    ])
    def test_argsort_matches_sorted(self, payload):
        order = argsort(payload)
        assert [payload[i] for i in order] == sorted(payload)

    def test_argsort_is_stable(self):
        payload = [(2, "a"), (1, "b"), (2, "c"), (1, "d")]
        order = argsort(payload, key=lambda r: r[0])
        assert [payload[i] for i in order] == [
            (1, "b"), (1, "d"), (2, "a"), (2, "c")
        ]

    def test_field_key_vectorizes_on_structured_arrays(self):
        payload = np.array([(3, 0.5), (1, 1.5)],
                           dtype=[("k", "i4"), ("v", "f8")])
        column = key_column(payload, field("k"))
        assert isinstance(column, np.ndarray)
        assert column.tolist() == [3, 1]
        order = argsort(payload, field("k"))
        assert list(order) == [1, 0]
        # And the scalar protocol still works record-at-a-time.
        assert field("k")(payload[0]) == 3

    def test_key_column_is_none_for_object_payloads(self):
        assert key_column([1, 2, 3]) is None
        assert key_column(np.arange(3), key=lambda r: -r) is None

    def test_key_list_plain_scalars(self):
        keys = key_list(np.array([3, 1, 2]))
        assert keys == [3, 1, 2]
        assert all(type(k) is int for k in keys)
        assert key_list([(1, "a")], key=lambda r: r[0]) == [1]


# ----------------------------------------------------------------------
# serialization
# ----------------------------------------------------------------------
class TestEncodeDecode:
    @pytest.mark.parametrize("payload", [
        [1, "two", (3, 4)],
        array("d", [1.5, 2.5]),
        np.arange(6, dtype=np.int64),
        np.array([1.0, 2.0], dtype=np.float32),
        np.array([(1, 2.0)], dtype=[("a", "i4"), ("b", "f8")]),
        [],
    ])
    def test_round_trip(self, payload):
        out = decode_block(encode_block(payload))
        assert type(out) is type(payload)
        assert list(out) == list(payload)
        if isinstance(payload, np.ndarray):
            assert out.dtype == payload.dtype

    def test_decoded_ndarray_is_writable(self):
        out = decode_block(encode_block(np.arange(4)))
        out[0] = 7  # frombuffer alone would be read-only
        assert out[0] == 7

    def test_object_dtype_arrays_pickle_whole(self):
        payload = np.array([{"a": 1}, None], dtype=object)
        out = decode_block(encode_block(payload))
        assert isinstance(out, np.ndarray)
        assert out[0] == {"a": 1}

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            decode_block(b"Zjunk")


# ----------------------------------------------------------------------
# the checksum bugfix: canonical bytes, not repr
# ----------------------------------------------------------------------
class TestCanonicalBytes:
    def test_elided_middle_no_longer_collides(self):
        # numpy reprs of large arrays elide the middle with `...`; the
        # seed checksummed repr(list(...)) of the *payload object*, so
        # two ndarray blocks differing only in elided elements hashed
        # identically and a torn write there went undetected.
        a = np.arange(10_000)
        b = a.copy()
        b[5_000] = -1
        assert "..." in repr(a)  # the premise: repr elides
        assert repr(a.tolist()) != repr(b.tolist())  # lists are honest
        assert canonical_bytes(a) != canonical_bytes(b)
        assert block_checksum(a) != block_checksum(b)

    def test_dtype_reinterpretation_does_not_collide(self):
        ones = np.ones(4, dtype=np.int32)
        same_bytes = ones.view(np.uint32)
        assert ones.tobytes() == same_bytes.tobytes()
        assert canonical_bytes(ones) != canonical_bytes(same_bytes)

    def test_equal_object_blocks_agree(self):
        assert canonical_bytes([1, 2, 3]) == canonical_bytes([1, 2, 3])
        assert canonical_bytes([1, 2, 3]) != canonical_bytes([1, 2, 4])

    def test_unpicklable_records_fall_back_to_repr(self):
        payload = [lambda: None]
        assert canonical_bytes(payload).startswith(b"R:")


# ----------------------------------------------------------------------
# the single-copy write bugfix
# ----------------------------------------------------------------------
class _CountingSeq(Sequence):
    """A payload that counts how many times it is materialized."""

    def __init__(self, records):
        self._records = list(records)
        self.iterations = 0

    def __len__(self):
        return len(self._records)

    def __getitem__(self, index):
        return self._records[index]

    def __iter__(self):
        self.iterations += 1
        return iter(self._records)


class TestSingleCopyWrite:
    def test_write_copies_payload_exactly_once(self):
        disk = DiskArray(block_capacity=4)
        block = disk.allocate()
        payload = _CountingSeq([1, 2, 3, 4])
        disk.write(block, payload)
        # The seed copied in _pre_write AND again in write(): two
        # materializations of the caller's sequence per store.
        assert payload.iterations == 1

    def test_write_counters_unchanged(self):
        disk = DiskArray(block_capacity=4)
        block = disk.allocate()
        disk.write(block, [1, 2, 3, 4])
        stats = disk.counter.snapshot()
        assert stats.writes == 1
        assert stats.reads == 0
        assert stats.write_steps == 1

    def test_stored_payload_is_isolated_from_caller(self):
        disk = DiskArray(block_capacity=4)
        block = disk.allocate()
        records = [1, 2, 3]
        disk.write(block, records)
        records.append(99)  # caller mutation must not reach the disk
        assert disk.read(block) == [1, 2, 3]
        read_back = disk.read(block)
        read_back.append(77)  # nor reader mutation
        assert disk.read(block) == [1, 2, 3]

    def test_typed_payload_stored_typed(self):
        disk = DiskArray(block_capacity=4)
        block = disk.allocate()
        payload = np.array([1, 2, 3, 4], dtype=np.int16)
        disk.write(block, payload)
        out = disk.read(block)
        assert isinstance(out, np.ndarray)
        assert out.dtype == np.int16
        payload[0] = 99
        assert disk.read(block)[0] == 1


# ----------------------------------------------------------------------
# type preservation through the machine's plumbing
# ----------------------------------------------------------------------
class TestTypePreservation:
    def test_buffer_pool_round_trip_preserves_type(self):
        disk = DiskArray(block_capacity=4)
        pool = BufferPool(disk, capacity=2)
        blocks = [disk.allocate() for _ in range(3)]
        pool.put_new(blocks[0], np.array([1, 2, 3, 4], dtype=np.int32))
        pool.put_new(blocks[1], array("d", [1.0, 2.0]))
        pool.put_new(blocks[2], [1, 2])  # evicts block 0 to disk
        pool.flush_all()
        pool.drop_all()
        out = pool.get(blocks[0])  # miss: reloaded from disk
        assert isinstance(out, np.ndarray)
        assert out.dtype == np.int32
        assert isinstance(pool.get(blocks[1]), array)
        assert isinstance(pool.get(blocks[2]), list)

    def test_stream_round_trip_preserves_type(self):
        m = machine()
        payload = np.arange(50, dtype=np.int64)
        stream = FileStream.from_payload(m, payload)
        for block in stream.iter_blocks():
            assert isinstance(block, np.ndarray)
            assert block.dtype == np.int64
        chunk = stream.read_block_range(0, stream.num_blocks)
        assert isinstance(chunk, np.ndarray)
        assert chunk.tolist() == payload.tolist()

    def test_torn_prefix_preserves_type(self):
        m = machine()
        with m.inject_faults(FaultPlan(torn_writes={0})):
            stream = FileStream.from_payload(
                m, np.arange(2 * m.B, dtype=np.int32)
            )
        torn = m.disk.peek(stream.block_ids[0])
        assert isinstance(torn, np.ndarray)
        assert 0 < len(torn) < m.B

    def test_scheduler_write_path_preserves_type(self):
        m = machine()
        block = m.disk.allocate()
        m.runtime.scheduler.queue_write(
            block, np.array([1, 2, 3], dtype=np.int8)
        )
        m.runtime.scheduler.drain()
        out = m.disk.read(block)
        assert isinstance(out, np.ndarray)
        assert out.dtype == np.int8


# ----------------------------------------------------------------------
# block assembly
# ----------------------------------------------------------------------
class TestBlockBuilder:
    def test_exact_blocks_and_final_partial(self):
        out = []
        builder = BlockBuilder(4, out.append)
        builder.push([1, 2, 3])
        builder.push([4, 5, 6, 7, 8, 9])
        builder.flush()
        assert [list(b) for b in out] == [[1, 2, 3, 4], [5, 6, 7, 8], [9]]

    def test_aligned_full_blocks_pass_through(self):
        out = []
        builder = BlockBuilder(4, out.append)
        payload = np.arange(8)
        builder.push(payload)
        assert len(out) == 2
        assert all(isinstance(b, np.ndarray) for b in out)
        builder.flush()
        assert len(out) == 2  # nothing pending

    def test_segment_slices(self):
        out = []
        builder = BlockBuilder(3, out.append)
        builder.push([0, 1, 2, 3, 4, 5], start=1, stop=5)
        builder.flush()
        assert [list(b) for b in out] == [[1, 2, 3], [4]]

    def test_mixed_representations_concat_to_list(self):
        out = []
        builder = BlockBuilder(4, out.append)
        builder.push(np.array([1, 2]))
        builder.push([3, 4])
        assert [list(b) for b in out] == [[1, 2, 3, 4]]


# ----------------------------------------------------------------------
# the typed path sorts correctly end to end
# ----------------------------------------------------------------------
class TestTypedSortEndToEnd:
    def test_merge_sort_on_ndarray_stream(self):
        from repro.sort.merge import external_merge_sort
        m = machine()
        rng = random.Random(3)
        data = np.array([rng.randrange(10_000) for _ in range(300)])
        stream = FileStream.from_payload(m, data)
        out = external_merge_sort(m, stream)
        assert list(out) == sorted(data.tolist())
        # Sorted runs were written as typed blocks, not object lists.
        for block in out.iter_blocks():
            assert isinstance(block, np.ndarray)

    def test_distribution_sort_on_ndarray_stream(self):
        from repro.sort.distribution import distribution_sort
        m = machine(B=8, m=8)
        rng = random.Random(4)
        data = np.array([rng.randrange(500) for _ in range(400)])
        stream = FileStream.from_payload(m, data)
        out = distribution_sort(m, stream)
        assert list(out) == sorted(data.tolist())

    def test_sorter_pipeline_matches_object_path(self):
        from repro.pipeline.sorter import Sorter
        m = machine()
        rng = random.Random(5)
        data = [rng.randrange(1000) for _ in range(200)]
        with Sorter(m) as sorter:
            sorter.consume(iter(data))
            assert list(sorter) == sorted(data)
        assert m.budget.in_use == 0

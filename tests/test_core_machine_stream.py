"""Tests for Machine configuration, measurement, memory budget, streams."""

import math

import pytest

from repro.core import (
    ConfigurationError,
    FileStream,
    Machine,
    MemoryBudget,
    MemoryLimitExceeded,
    StreamError,
    StripedStream,
    scan_io,
)


class TestMachine:
    def test_derived_parameters(self):
        m = Machine(block_size=32, memory_blocks=8, num_disks=2)
        assert m.B == 32
        assert m.m == 8
        assert m.M == 256
        assert m.D == 2
        assert m.fan_in == 7

    def test_fan_in_on_minimal_machines(self):
        # Regression: fan_in once returned max(2, m - 1), claiming a
        # 2-frame machine could merge 2 ways (which needs 3 frames).
        assert Machine(block_size=4, memory_blocks=2).fan_in == 1
        assert Machine(block_size=4, memory_blocks=3).fan_in == 2

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"block_size": 0, "memory_blocks": 4},
            {"block_size": 8, "memory_blocks": 1},
            {"block_size": 8, "memory_blocks": 4, "num_disks": 0},
        ],
    )
    def test_invalid_configurations_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            Machine(**kwargs)

    def test_measure_reports_delta_only(self):
        m = Machine(block_size=4, memory_blocks=4)
        FileStream.from_records(m, range(40))  # pre-existing I/O
        with m.measure() as io:
            FileStream.from_records(m, range(20))
        assert io.writes == 5
        assert io.reads == 0

    def test_measure_flushes_dirty_pool_frames(self):
        m = Machine(block_size=4, memory_blocks=4)
        bid = m.disk.allocate()
        with m.measure() as io:
            m.pool.put_new(bid, [1, 2])
        assert io.writes == 1

    def test_reset_stats(self):
        m = Machine(block_size=4, memory_blocks=4)
        FileStream.from_records(m, range(40))
        m.reset_stats()
        assert m.stats().total == 0


class TestMemoryBudget:
    def test_acquire_release_cycle(self):
        b = MemoryBudget(100)
        b.acquire(60)
        assert b.in_use == 60
        assert b.available == 40
        b.release(60)
        assert b.in_use == 0
        assert b.peak == 60

    def test_overflow_raises(self):
        b = MemoryBudget(100)
        b.acquire(80)
        with pytest.raises(MemoryLimitExceeded):
            b.acquire(30)

    def test_reserve_context_manager_releases_on_error(self):
        b = MemoryBudget(100)
        with pytest.raises(ValueError):
            with b.reserve(50):
                raise ValueError("boom")
        assert b.in_use == 0

    def test_over_release_rejected(self):
        b = MemoryBudget(100)
        b.acquire(10)
        with pytest.raises(ConfigurationError):
            b.release(20)

    def test_exception_carries_details(self):
        b = MemoryBudget(10)
        b.acquire(5)
        with pytest.raises(MemoryLimitExceeded) as info:
            b.acquire(10)
        assert info.value.requested == 10
        assert info.value.in_use == 5
        assert info.value.capacity == 10


class TestFileStream:
    def test_round_trip_preserves_order(self):
        m = Machine(block_size=8, memory_blocks=4)
        data = list(range(100))
        s = FileStream.from_records(m, data)
        assert list(s) == data

    def test_empty_stream(self):
        m = Machine(block_size=8, memory_blocks=4)
        s = FileStream(m).finalize()
        assert list(s) == []
        assert len(s) == 0
        assert s.num_blocks == 0

    def test_write_io_equals_scan_bound(self):
        m = Machine(block_size=8, memory_blocks=4)
        with m.measure() as io:
            FileStream.from_records(m, range(100))
        assert io.writes == scan_io(100, 8) == 13

    def test_read_io_equals_scan_bound(self):
        m = Machine(block_size=8, memory_blocks=4)
        s = FileStream.from_records(m, range(100))
        with m.measure() as io:
            list(s)
        assert io.reads == scan_io(100, 8)

    def test_partial_final_block(self):
        m = Machine(block_size=8, memory_blocks=4)
        s = FileStream.from_records(m, range(9))
        assert s.num_blocks == 2
        assert s.read_block(1) == [8]

    def test_append_after_finalize_raises(self):
        m = Machine(block_size=8, memory_blocks=4)
        s = FileStream.from_records(m, range(4))
        with pytest.raises(StreamError):
            s.append(5)

    def test_read_before_finalize_raises(self):
        m = Machine(block_size=8, memory_blocks=4)
        s = FileStream(m)
        s.append(1)
        with pytest.raises(StreamError):
            iter(s)

    def test_finalize_is_idempotent(self):
        m = Machine(block_size=8, memory_blocks=4)
        s = FileStream.from_records(m, range(4))
        s.finalize()
        assert list(s) == list(range(4))

    def test_delete_frees_blocks(self):
        m = Machine(block_size=8, memory_blocks=4)
        s = FileStream.from_records(m, range(64))
        before = m.disk.allocated_blocks
        s.delete()
        assert m.disk.allocated_blocks == before - 8
        with pytest.raises(StreamError):
            list(s)

    def test_delete_is_idempotent(self):
        m = Machine(block_size=8, memory_blocks=4)
        s = FileStream.from_records(m, range(8))
        s.delete()
        s.delete()

    def test_read_block_out_of_range(self):
        m = Machine(block_size=8, memory_blocks=4)
        s = FileStream.from_records(m, range(8))
        with pytest.raises(StreamError):
            s.read_block(5)

    def test_writer_reserves_one_frame(self):
        m = Machine(block_size=8, memory_blocks=2)
        s = FileStream(m)
        s.append(1)
        assert m.budget.in_use == 8
        s.finalize()
        assert m.budget.in_use == 0

    def test_abandoned_reader_releases_budget(self):
        m = Machine(block_size=8, memory_blocks=4)
        s = FileStream.from_records(m, range(64))
        it = iter(s)
        next(it)
        assert m.budget.in_use == 8
        it.close()
        assert m.budget.in_use == 0

    def test_multiple_concurrent_readers(self):
        m = Machine(block_size=8, memory_blocks=4)
        s = FileStream.from_records(m, range(16))
        pairs = list(zip(iter(s), iter(s)))
        assert all(a == b for a, b in pairs)
        assert len(pairs) == 16


class TestStripedStream:
    def test_round_trip(self):
        m = Machine(block_size=8, memory_blocks=8, num_disks=4)
        data = list(range(100))
        s = StripedStream.from_records(m, data)
        assert list(s) == data

    def test_blocks_spread_across_disks(self):
        m = Machine(block_size=4, memory_blocks=8, num_disks=4)
        s = StripedStream.from_records(m, range(32))
        disks = {m.disk.disk_of(bid) for bid in s._block_ids}
        assert disks == {0, 1, 2, 3}

    def test_scan_steps_divided_by_d(self):
        m = Machine(block_size=4, memory_blocks=16, num_disks=4)
        s = StripedStream.from_records(m, range(64))  # 16 blocks
        m.reset_stats()
        list(s)
        stats = m.stats()
        assert stats.reads == 16
        assert stats.read_steps == 4  # 16 blocks / 4 disks

    def test_write_steps_divided_by_d(self):
        m = Machine(block_size=4, memory_blocks=16, num_disks=4)
        with m.measure() as io:
            StripedStream.from_records(m, range(64))
        assert io.writes == 16
        assert io.total_steps == 4

    def test_partial_stripe_flushed_on_finalize(self):
        m = Machine(block_size=4, memory_blocks=16, num_disks=4)
        s = StripedStream.from_records(m, range(10))  # 3 blocks < D
        assert list(s) == list(range(10))

    def test_empty_stream(self):
        m = Machine(block_size=4, memory_blocks=8, num_disks=4)
        s = StripedStream(m).finalize()
        assert list(s) == []
        assert s.num_blocks == 0
        assert m.stats().total == 0
        assert m.budget.in_use == 0

    def test_fewer_blocks_than_disks(self):
        m = Machine(block_size=4, memory_blocks=8, num_disks=4)
        s = StripedStream.from_records(m, range(10))  # 3 blocks < D
        assert s.num_blocks == 3
        assert list(s) == list(range(10))
        stats = m.stats()
        assert stats.writes == 3 and stats.write_steps == 1
        assert stats.reads == 3 and stats.read_steps == 1

    def test_finalize_twice_flushes_once(self):
        m = Machine(block_size=4, memory_blocks=8, num_disks=4)
        s = StripedStream(m)
        s.extend(range(10))
        s.finalize()
        writes = m.stats().writes
        s.finalize()
        assert m.stats().writes == writes  # no duplicate flush
        assert s.num_blocks == 3
        assert list(s) == list(range(10))

    def test_single_disk_striped_equals_plain(self):
        m = Machine(block_size=4, memory_blocks=8, num_disks=1)
        with m.measure() as io:
            s = StripedStream.from_records(m, range(40))
        assert io.writes == io.write_steps == 10
        assert list(s) == list(range(40))

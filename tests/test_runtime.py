"""Tests for the I/O runtime: scheduler, write-behind, prefetch."""

from math import ceil

import pytest

from repro.core import (
    ConfigurationError,
    FileStream,
    Machine,
    StripedStream,
)
from repro.runtime import ForecastingPrefetcher, read_ahead
from repro.sort import external_merge_sort, merge_streams
from repro.workloads import uniform_ints


def machine_with_blocks(num_disks, num_blocks, block_size=4,
                        memory_blocks=8):
    """A machine plus ``num_blocks`` allocated blocks striped over its
    disks, each holding a distinct payload."""
    machine = Machine(block_size=block_size, memory_blocks=memory_blocks,
                      num_disks=num_disks)
    block_ids = []
    for index in range(num_blocks):
        block_id = machine.disk.allocate(index % num_disks)
        machine.disk.write(block_id, [index] * block_size)
        block_ids.append(block_id)
    machine.reset_stats()
    return machine, block_ids


class TestIOScheduler:
    def test_disk_distinct_batch_is_one_step(self):
        machine, blocks = machine_with_blocks(4, 4)
        payloads = machine.runtime.scheduler.read_batch(blocks)
        assert payloads == [[i] * 4 for i in range(4)]
        stats = machine.stats()
        assert stats.reads == 4
        assert stats.read_steps == 1

    def test_same_disk_requests_take_one_step_each(self):
        machine, _ = machine_with_blocks(4, 0)
        blocks = [machine.disk.allocate(0) for _ in range(3)]
        for block_id in blocks:
            machine.disk.write(block_id, [block_id])
        machine.reset_stats()
        machine.runtime.scheduler.read_batch(blocks)
        assert machine.stats().read_steps == 3

    def test_drain_issues_writes_before_reads(self):
        machine, blocks = machine_with_blocks(2, 2)
        scheduler = machine.runtime.scheduler
        scheduler.queue_write(blocks[0], ["new"])
        scheduler.queue_read(blocks[0])
        results = scheduler.drain()
        assert results[blocks[0]] == ["new"]

    def test_waves_larger_than_d_split_into_steps(self):
        machine, blocks = machine_with_blocks(2, 6)  # 3 blocks per disk
        machine.runtime.scheduler.read_batch(blocks)
        stats = machine.stats()
        assert stats.reads == 6
        assert stats.read_steps == 3

    def test_write_batch_counts_parallel_steps(self):
        machine, blocks = machine_with_blocks(4, 4)
        machine.runtime.scheduler.write_batch(
            [(block_id, ["x"]) for block_id in blocks]
        )
        stats = machine.stats()
        assert stats.writes == 4
        assert stats.write_steps == 1

    def test_try_pin_charges_budget_until_exhausted(self):
        machine = Machine(block_size=4, memory_blocks=2)
        scheduler = machine.runtime.scheduler
        assert scheduler.try_pin()
        assert scheduler.try_pin()
        assert machine.budget.in_use == 8
        assert not scheduler.try_pin()  # no spare frame left
        scheduler.unpin(2)
        assert machine.budget.in_use == 0

    def test_try_pin_slack_keeps_frames_available(self):
        machine = Machine(block_size=4, memory_blocks=4)
        scheduler = machine.runtime.scheduler
        machine.budget.acquire(8)  # 2 of 4 frames taken
        assert not scheduler.try_pin(slack_frames=2)
        assert scheduler.try_pin(slack_frames=1)
        scheduler.unpin()
        machine.budget.release(8)

    def test_pin_count_capped_at_frame_budget(self):
        machine = Machine(block_size=4, memory_blocks=3)
        scheduler = machine.runtime.scheduler
        pins = 0
        while scheduler.try_pin():
            pins += 1
        assert pins == 3  # never beyond m frames
        scheduler.unpin(pins)

    def test_unpin_more_than_pinned_rejected(self):
        machine = Machine(block_size=4, memory_blocks=4)
        with pytest.raises(ConfigurationError):
            machine.runtime.scheduler.unpin()


class TestWriteBehind:
    def test_defers_until_every_disk_covered(self):
        machine, blocks = machine_with_blocks(4, 4)
        writer = machine.runtime.writer
        for block_id in blocks[:3]:
            writer.put(block_id, ["w"])
        assert machine.stats().writes == 0  # still deferred
        writer.put(blocks[3], ["w"])  # fourth disk completes the window
        stats = machine.stats()
        assert stats.writes == 4
        assert stats.write_steps == 1
        assert machine.budget.in_use == 0  # pins returned on flush

    def test_single_disk_writes_through(self):
        machine, blocks = machine_with_blocks(1, 1)
        machine.runtime.writer.put(blocks[0], ["w"])
        stats = machine.stats()
        assert stats.writes == 1
        assert len(machine.runtime.writer) == 0

    def test_same_disk_collision_flushes_window(self):
        machine, _ = machine_with_blocks(4, 0)
        a = machine.disk.allocate(0)
        b = machine.disk.allocate(0)
        machine.disk.write(a, [])
        machine.disk.write(b, [])
        machine.reset_stats()
        writer = machine.runtime.writer
        writer.put(a, ["a"])
        writer.put(b, ["b"])  # same disk: window with `a` flushed
        assert machine.stats().writes == 1
        assert machine.disk.peek(a) == ["a"]
        writer.flush()
        assert machine.disk.peek(b) == ["b"]

    def test_rewrite_coalesces_in_window(self):
        machine, blocks = machine_with_blocks(2, 1)
        writer = machine.runtime.writer
        writer.put(blocks[0], ["v1"])
        writer.put(blocks[0], ["v2"])
        writer.flush()
        assert machine.stats().writes == 1
        assert machine.disk.peek(blocks[0]) == ["v2"]

    def test_discard_drops_deferred_blocks(self):
        machine, blocks = machine_with_blocks(4, 2)
        writer = machine.runtime.writer
        writer.put(blocks[0], ["a"])
        writer.put(blocks[1], ["b"])
        writer.discard([blocks[0]])
        writer.flush()
        assert machine.stats().writes == 1
        assert machine.disk.peek(blocks[1]) == ["b"]
        assert machine.budget.in_use == 0

    def test_ensure_flushed_makes_block_readable(self):
        machine, blocks = machine_with_blocks(4, 1)
        machine.runtime.writer.put(blocks[0], ["w"])
        machine.runtime.writer.ensure_flushed(blocks[0])
        assert machine.disk.read(blocks[0]) == ["w"]

    def test_budget_pressure_reclaims_window(self):
        # A deferred window's pins are droppable on demand: an acquire
        # that would otherwise overflow M flushes it instead of raising.
        machine, blocks = machine_with_blocks(4, 2, memory_blocks=4)
        writer = machine.runtime.writer
        writer.put(blocks[0], ["a"])
        writer.put(blocks[1], ["b"])
        assert machine.budget.in_use == 8  # two pinned frames
        machine.budget.acquire(16)  # needs every frame
        assert len(writer) == 0  # window was flushed, not an error
        machine.budget.release(16)


class TestReadAhead:
    def test_yields_payloads_in_order_with_batched_steps(self):
        machine, blocks = machine_with_blocks(4, 8, memory_blocks=16)
        payloads = list(read_ahead(machine.runtime, blocks))
        assert payloads == [[i] * 4 for i in range(8)]
        stats = machine.stats()
        assert stats.reads == 8
        assert stats.read_steps == 2  # 8 blocks / 4 disks
        assert machine.budget.in_use == 0

    def test_single_disk_is_demand_paged(self):
        machine, blocks = machine_with_blocks(1, 5)
        list(read_ahead(machine.runtime, blocks))
        stats = machine.stats()
        assert stats.reads == stats.read_steps == 5

    def test_abandoned_generator_unpins_staged_frames(self):
        machine, blocks = machine_with_blocks(4, 8, memory_blocks=16)
        it = read_ahead(machine.runtime, blocks)
        next(it)  # fetched a batch, staging 3 blocks
        assert machine.budget.in_use > 0
        it.close()
        assert machine.budget.in_use == 0

    def test_never_pins_beyond_budget(self):
        # m=2: a scan's read-ahead slack (D frames) forbids any pin, so
        # the scan degrades to demand paging instead of overflowing M.
        machine, blocks = machine_with_blocks(4, 8, memory_blocks=2)
        payloads = list(read_ahead(machine.runtime, blocks))
        assert payloads == [[i] * 4 for i in range(8)]
        assert machine.budget.in_use == 0


class TestForecastingPrefetcher:
    def striped_runs(self, machine, num_runs, blocks_per_run):
        """Finalized sorted striped runs with interleaved key ranges."""
        runs = []
        for r in range(num_runs):
            records = [r + num_runs * i
                       for i in range(blocks_per_run * machine.B)]
            runs.append(StripedStream.from_records(
                machine, records, name=f"run/{r}"
            ))
        return runs

    def test_readers_yield_each_run_in_order(self):
        machine = Machine(block_size=4, memory_blocks=16, num_disks=4)
        runs = self.striped_runs(machine, 3, 4)
        prefetcher = ForecastingPrefetcher(
            machine.runtime, [run.block_ids for run in runs],
            key=lambda r: r,
        )
        try:
            for index, run in enumerate(runs):
                assert list(prefetcher.reader(index)) == list(run)
        finally:
            prefetcher.close()
        assert machine.budget.in_use == 0

    def test_close_is_idempotent_and_releases_reader_frames(self):
        machine = Machine(block_size=4, memory_blocks=16, num_disks=4)
        runs = self.striped_runs(machine, 3, 2)
        prefetcher = ForecastingPrefetcher(
            machine.runtime, [run.block_ids for run in runs],
            key=lambda r: r,
        )
        assert machine.budget.in_use == 3 * machine.B  # reader frames
        next(prefetcher.reader(0))
        prefetcher.close()
        prefetcher.close()
        assert machine.budget.in_use == 0

    def test_merge_read_steps_near_optimal(self):
        machine = Machine(block_size=4, memory_blocks=16, num_disks=4)
        runs = self.striped_runs(machine, 3, 8)
        machine.reset_stats()
        merged = merge_streams(machine, runs, stream_cls=StripedStream)
        stats = machine.stats()
        assert list(merged) != []
        # 24 input blocks over 4 disks: forecasting batches reads close
        # to the 6-step floor; without it every read is its own step.
        assert stats.read_steps - stats.reads // 4 <= 24 // 2


class TestScheduledSortAcceptance:
    # Striped at m=16 exercises a tight frame budget; plain FileStream
    # needs a few more spare frames before forecasting can batch (11 of
    # 16 frames are hard-committed to reader buffers at m=16).
    @pytest.mark.parametrize("stream_cls,memory_blocks",
                             [(FileStream, 24), (StripedStream, 16)])
    def test_d4_merge_sort_within_1_5x_of_step_optimal(
        self, stream_cls, memory_blocks
    ):
        machine = Machine(block_size=32, memory_blocks=memory_blocks,
                          num_disks=4)
        data = uniform_ints(4096, seed=42)
        stream = stream_cls.from_records(machine, data)
        machine.reset_stats()
        result = external_merge_sort(machine, stream,
                                     stream_cls=stream_cls)
        stats = machine.stats()
        assert list(result) == sorted(data)
        assert machine.budget.in_use == 0
        optimal = ceil(stats.total / machine.D)
        assert stats.total_steps <= 1.5 * optimal

    def test_d1_counts_identical_to_unscheduled_model(self):
        # The runtime must be invisible on a single disk: exact transfer
        # counts equal the textbook 2·(N/B)·(1 + passes) formula.
        machine = Machine(block_size=8, memory_blocks=4)
        data = uniform_ints(512, seed=1)
        stream = FileStream.from_records(machine, data)
        machine.reset_stats()
        external_merge_sort(machine, stream)
        stats = machine.stats()
        assert stats.total == stats.total_steps

"""Cross-tenant isolation regressions for the shared runtime.

Three interference channels a multi-tenant service must close:

* ``WriteBehind.discard`` — one tenant deleting a stream (or a failing
  job cleaning up its intermediates) must never drop or corrupt another
  tenant's deferred writes.
* Deficit-aware reclaim — one tenant's hard acquire shrinking the
  shared cache must never evict another tenant's *pinned* frames, and
  must leave the parent ledger consistent.
* Fault plans — a tenant whose blocks fault degrades alone: its own
  ledger carries the faults, retries, and stalls; a permanently failing
  block fails only the requesting job, whose cleanup returns every
  reserved record.
"""

import random

import pytest

from repro.core import FileStream, Machine, MemoryLimitExceeded
from repro.faults import FaultPlan
from repro.search.btree import BPlusTree
from repro.service import (
    DONE,
    FAILED,
    QueryService,
    btree_lookup_job,
    sort_job,
)


def machine(B=16, m=16, D=4):
    return Machine(block_size=B, memory_blocks=m, num_disks=D)


def records(n, seed=0):
    rng = random.Random(seed)
    return [rng.randrange(10 * n) for _ in range(n)]


class TestWriteBehindIsolation:
    def test_discard_keeps_other_streams_pending_writes(self):
        m = machine(B=4, m=12, D=4)
        write_behind = m.runtime.writer
        mine = FileStream(m, name="a")
        theirs = FileStream(m, name="b")
        # Interleave appends so both streams have blocks in the window.
        mine.append_block([1] * 4)
        theirs.append_block([2] * 4)
        assert len(write_behind) > 0
        mine.delete()  # discards a's deferred blocks only
        theirs.append_block([3] * 4)
        theirs.finalize()
        m.runtime.flush()
        assert list(theirs) == [2] * 4 + [3] * 4
        assert len(write_behind) == 0

    def test_discard_returns_only_the_dropped_pins(self):
        m = machine(B=4, m=12, D=4)
        scheduler = m.runtime.scheduler
        write_behind = m.runtime.writer
        a = FileStream(m, name="a")
        b = FileStream(m, name="b")
        a.append_block([1] * 4)
        b.append_block([2] * 4)
        pinned_before = scheduler.pinned
        pending_before = len(write_behind)
        a.delete()
        dropped = pending_before - len(write_behind)
        assert scheduler.pinned == pinned_before - dropped
        b.finalize()
        m.runtime.flush()
        assert scheduler.pinned == 0

    def test_failed_job_cleanup_spares_other_tenants_output(self):
        """A sort job killed by a permanent fault deletes its own
        intermediate runs; the other tenant's sort must still produce
        byte-correct output."""
        m = machine()
        data_a = records(600, seed=1)
        data_b = records(600, seed=2)
        stream_a = FileStream.from_records(m, data_a, name="a")
        stream_b = FileStream.from_records(m, data_b, name="b")
        m.pool.flush_all()
        m.runtime.flush()
        m.reset_stats()

        victim_block = list(stream_a.block_ids)[0]
        svc = QueryService(m)
        svc.add_tenant("doomed", weight=1, max_running=1)
        svc.add_tenant("healthy", weight=1, max_running=1)
        job_a = svc.submit("doomed", sort_job(m, stream_a, name="sa"))
        job_b = svc.submit("healthy", sort_job(m, stream_b, name="sb"))
        plan = FaultPlan(seed=7, fail_block_reads={victim_block: None})
        with m.inject_faults(plan):
            svc.run()

        assert job_a.status == FAILED
        assert job_b.status == DONE
        assert list(job_b.result) == sorted(data_b)
        # The failed job's cleanup returned its share in full.
        assert svc.tenant("doomed").share.in_use == 0
        assert m.budget.in_use == 0


class TestReclaimIsolation:
    def test_reclaim_never_evicts_pinned_frames(self):
        m = machine(B=4, m=8, D=2)
        block = m.disk.allocate(0)
        m.disk.write(block, [9] * 4)
        m.pool.get(block)
        m.pool.pin(block)
        # Fill the rest of M with a hard acquire: the reclaimer must
        # shrink the cache around the pinned frame, not through it.
        free = m.budget.capacity - m.budget.in_use
        m.budget.acquire(free)
        assert m.pool.is_resident(block)
        assert m.pool.get(block) == [9] * 4
        # The pinned frame is hard memory now; one more record must
        # fail instead of scrubbing it.
        with pytest.raises(MemoryLimitExceeded):
            m.budget.acquire(1)
        m.budget.release(free)
        m.pool.unpin(block)

    def test_tenant_pressure_reclaims_only_cache(self):
        """One tenant's SubBudget acquire under a full cache reclaims
        pool frames (reclaimable column) and never touches another
        tenant's hard in_use."""
        m = machine(B=4, m=12, D=2)
        from repro.core import FairShare
        fair = FairShare(m.budget)
        a = fair.add_share("a", weight=1)
        b = fair.add_share("b", weight=1)
        b.acquire(b.capacity)  # b's hard floor, fully used
        # Warm the cache up to the remaining capacity.
        blocks = []
        for i in range(a.capacity // m.block_size):
            blk = m.disk.allocate(i % m.num_disks)
            m.disk.write(blk, [i] * 4)
            m.pool.get(blk)
            blocks.append(blk)
        assert m.budget.reclaimable > 0
        a.acquire(a.capacity)  # forces reclaim of cached frames
        assert a.in_use == a.capacity
        assert b.in_use == b.capacity
        assert m.budget.in_use == m.budget.capacity
        a.release(a.capacity)
        b.release(b.capacity)


class TestFaultIsolation:
    def build(self):
        m = machine()
        tree = BPlusTree.bulk_load(m, ((i, i) for i in range(2000)))
        stream = FileStream.from_records(m, records(1500, seed=3),
                                         name="olap/in")
        m.pool.flush_all()
        m.runtime.flush()
        m.reset_stats()
        svc = QueryService(m)
        svc.add_tenant("oltp", weight=1, max_running=8)
        svc.add_tenant("olap", weight=2, max_running=2)
        rng = random.Random(5)
        lookups = [
            svc.submit("oltp", btree_lookup_job(tree, rng.randrange(2000)))
            for _ in range(40)
        ]
        sort = svc.submit("olap", sort_job(m, stream, name="bigsort"))
        return m, svc, stream, lookups, sort

    def test_transient_faults_charged_to_faulted_tenant_only(self):
        m, svc, stream, lookups, sort = self.build()
        victim = list(stream.block_ids)[0]
        plan = FaultPlan(seed=1, fail_block_reads={victim: 2})
        with m.inject_faults(plan):
            report = svc.run()
        assert sort.status == DONE
        assert all(j.status == DONE for j in lookups)
        oltp = report["tenants"]["oltp"]
        olap = report["tenants"]["olap"]
        assert oltp["faults"] == 0
        assert oltp["retries"] == 0
        assert oltp["stall_steps"] == 0
        assert olap["faults"] > 0
        assert olap["retries"] > 0
        assert olap["stall_steps"] > 0
        # The stalls widen the faulted tenant's wall clock only.
        assert olap["wall_steps"] > olap["io_steps"]
        assert oltp["wall_steps"] == oltp["io_steps"]

    def test_permanent_fault_fails_only_the_victim_job(self):
        m, svc, stream, lookups, sort = self.build()
        victim = list(stream.block_ids)[0]
        plan = FaultPlan(seed=1, fail_block_reads={victim: None})
        with m.inject_faults(plan):
            report = svc.run()
        assert sort.status == FAILED
        assert sort.error is not None
        assert all(j.status == DONE for j in lookups)
        assert report["tenants"]["olap"]["failed"] == 1
        assert report["tenants"]["oltp"]["completed"] == 40
        # The victim's generator cleanup released every reservation.
        assert svc.tenant("olap").share.in_use == 0
        assert m.budget.in_use == 0

"""Tests for connected components."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ConfigurationError, FileStream, Machine
from repro.graph import (
    AdjacencyStore,
    dfs_components,
    external_components,
    semi_external_components,
)
from repro.workloads import components_graph, connected_random_graph, grid_graph


def machine(B=16, m=8):
    return Machine(block_size=B, memory_blocks=m)


def partition(labels):
    groups = {}
    for vertex, label in labels.items():
        groups.setdefault(label, set()).add(vertex)
    return sorted(map(frozenset, groups.values()), key=min)


class TestExternalComponents:
    def test_single_component(self):
        m = machine()
        n, edges = connected_random_graph(150, seed=1)
        labels = external_components(
            m, n, FileStream.from_records(m, edges)
        )
        assert set(labels.values()) == {0}
        assert len(labels) == n

    def test_multiple_components_match_ground_truth(self):
        m = machine()
        n, edges, truth = components_graph(300, 6, seed=2)
        labels = external_components(
            m, n, FileStream.from_records(m, edges)
        )
        assert partition(labels) == partition(dict(enumerate(truth)))

    def test_labels_are_component_minima(self):
        m = machine()
        n, edges, _ = components_graph(200, 4, seed=3)
        labels = external_components(
            m, n, FileStream.from_records(m, edges)
        )
        for group in partition(labels):
            assert labels[min(group)] == min(group)
            assert all(labels[v] == min(group) for v in group)

    def test_isolated_vertices(self):
        m = machine()
        labels = external_components(
            m, 5, FileStream.from_records(m, [(0, 1)])
        )
        assert labels == {0: 0, 1: 0, 2: 2, 3: 3, 4: 4}

    def test_no_edges(self):
        m = machine()
        labels = external_components(m, 4, FileStream(m).finalize())
        assert labels == {0: 0, 1: 1, 2: 2, 3: 3}

    def test_self_loops_and_duplicates_ignored(self):
        m = machine()
        edges = [(0, 0), (0, 1), (1, 0), (0, 1)]
        labels = external_components(
            m, 3, FileStream.from_records(m, edges)
        )
        assert labels == {0: 0, 1: 0, 2: 2}

    def test_grid_is_one_component(self):
        m = machine()
        n, edges = grid_graph(10, 10)
        labels = external_components(
            m, n, FileStream.from_records(m, edges)
        )
        assert set(labels.values()) == {0}

    def test_path_graph_long_diameter(self):
        """A long path stresses the pointer-jumping convergence."""
        m = machine()
        n = 500
        edges = [(i, i + 1) for i in range(n - 1)]
        labels = external_components(
            m, n, FileStream.from_records(m, edges)
        )
        assert set(labels.values()) == {0}

    def test_out_of_range_edge_rejected(self):
        m = machine()
        with pytest.raises(ConfigurationError):
            external_components(
                m, 2, FileStream.from_records(m, [(0, 9)])
            )

    def test_no_leaks(self):
        m = machine()
        n, edges, _ = components_graph(200, 4, seed=4)
        stream = FileStream.from_records(m, edges)
        before = m.disk.allocated_blocks
        external_components(m, n, stream)
        assert m.disk.allocated_blocks == before
        assert m.budget.in_use == 0

    @given(st.integers(1, 80), st.integers(1, 6), st.integers(0, 10**6))
    @settings(max_examples=20, deadline=None)
    def test_property_matches_ground_truth(self, n, k, seed):
        k = min(k, n)
        m = machine(B=8, m=6)
        n, edges, truth = components_graph(n, k, seed=seed)
        labels = external_components(
            m, n, FileStream.from_records(m, edges)
        )
        assert partition(labels) == partition(dict(enumerate(truth)))


class TestBaselines:
    def test_all_three_algorithms_agree(self):
        n, edges, _ = components_graph(250, 5, seed=5)
        m1 = machine()
        ext = external_components(
            m1, n, FileStream.from_records(m1, edges)
        )
        m2 = Machine(block_size=64, memory_blocks=8)  # M >= n
        semi = semi_external_components(
            m2, n, FileStream.from_records(m2, edges)
        )
        m3 = machine()
        adj = AdjacencyStore.from_edges(m3, n, edges)
        dfs = dfs_components(m3, adj)
        assert partition(ext) == partition(semi) == partition(dfs)

    def test_semi_external_needs_v_in_memory(self):
        m = machine()  # M = 128 < 500 vertices
        n, edges = connected_random_graph(500, seed=6)
        from repro.core import MemoryLimitExceeded

        with pytest.raises(MemoryLimitExceeded):
            semi_external_components(
                m, n, FileStream.from_records(m, edges)
            )

    def test_semi_external_is_one_scan(self):
        m = Machine(block_size=16, memory_blocks=64)  # M = 1024
        n, edges = connected_random_graph(500, seed=7)
        stream = FileStream.from_records(m, edges)
        with m.measure() as io:
            semi_external_components(m, n, stream)
        assert io.reads == stream.num_blocks
        assert io.writes == 0

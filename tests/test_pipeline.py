"""Tests for the pipelined sorter, external vector, and Pipeline API.

Covers the unit behavior of :mod:`repro.pipeline`, the fused vs.
materialized parity of every refactored consumer (sort-merge join,
time-forward processing, list ranking — including under injected
faults), the measured I/O savings of fusion, and the across-recursion
disk-footprint regression for list ranking.
"""

import random

import pytest

from repro.core import ConfigurationError, Machine, StreamError
from repro.core.stream import FileStream
from repro.faults import FaultPlan
from repro.graph import (
    list_ranking,
    list_ranking_materialized,
    time_forward_process,
    time_forward_process_materialized,
)
from repro.graph.list_ranking import weighted_list_ranking
from repro.pipeline import ExVector, Pipeline, Sorter
from repro.relational import (
    Table,
    sort_merge_join,
    sort_merge_join_materialized,
)
from repro.sort.merge import external_merge_sort
from repro.workloads import (
    foreign_key_relations,
    random_linked_list,
    uniform_ints,
)


def machine(B=16, m=16):
    return Machine(block_size=B, memory_blocks=m)


def shuffled(n, seed=0):
    values = list(range(n))
    random.Random(seed).shuffle(values)
    return values


def random_dag(n, avg_out=2.5, seed=0):
    rng = random.Random(seed)
    edges = set()
    target = min(int(n * avg_out), n * (n - 1) // 2)
    while len(edges) < target:
        u = rng.randrange(n - 1)
        v = rng.randrange(u + 1, n)
        edges.add((u, v))
    return sorted(edges)


# ---------------------------------------------------------------------
# ExVector
# ---------------------------------------------------------------------
class TestExVector:
    def test_append_len_getitem(self):
        m = machine()
        v = ExVector(m)
        for i in range(100):
            v.append(i * 3)
        assert len(v) == 100
        assert v[0] == 0
        assert v[99] == 297
        assert v[-1] == 297
        v.delete()

    def test_iteration_in_order(self):
        m = machine()
        v = ExVector(m)
        data = shuffled(500, seed=3)
        v.extend(data)
        assert list(v) == data
        v.delete()

    def test_setitem_roundtrip(self):
        m = machine()
        v = ExVector(m)
        v.extend(range(200))
        v[7] = -7
        v[150] = -150
        assert v[7] == -7
        assert v[150] == -150
        v.delete()

    def test_larger_than_memory(self):
        m = machine(B=16, m=4)
        v = ExVector(m)
        n = 16 * 4 * 8  # 8x the memory envelope
        v.extend(range(n))
        assert len(v) == n
        assert v[n - 1] == n - 1
        v.delete()

    def test_out_of_range_rejected(self):
        m = machine()
        v = ExVector(m)
        v.append(1)
        with pytest.raises(StreamError):
            v[5]
        v.delete()

    def test_delete_frees_blocks(self):
        m = machine()
        baseline = m.disk.allocated_blocks
        v = ExVector(m)
        v.extend(range(1000))
        assert m.disk.allocated_blocks > baseline
        v.delete()
        assert m.disk.allocated_blocks == baseline


# ---------------------------------------------------------------------
# Sorter
# ---------------------------------------------------------------------
class TestSorter:
    def test_sorts_shuffled_records(self):
        m = machine()
        data = shuffled(2000, seed=1)
        with Sorter(m) as sorter:
            sorter.consume(data)
            assert list(sorter) == sorted(data)

    def test_key_and_stability(self):
        m = machine()
        data = [(i % 7, i) for i in range(700)]
        with Sorter(m, key=lambda r: r[0]) as sorter:
            sorter.consume(data)
            out = list(sorter)
        # stable: equal keys keep input (second-component) order
        assert out == sorted(data, key=lambda r: r[0])

    def test_empty_input(self):
        m = machine()
        with Sorter(m) as sorter:
            assert list(sorter.finish()) == []

    def test_push_after_finish_rejected(self):
        m = machine()
        with Sorter(m) as sorter:
            sorter.push(1)
            sorter.finish()
            with pytest.raises(StreamError):
                sorter.push(2)

    def test_close_frees_everything(self):
        m = machine()
        baseline = m.disk.allocated_blocks
        budget_baseline = m.budget.available
        sorter = Sorter(m)
        sorter.consume(shuffled(1000, seed=2))
        sorter.close()
        assert m.disk.allocated_blocks == baseline
        assert m.budget.available == budget_baseline
        sorter.close()  # idempotent

    def test_abandoned_pull_reclaimed_by_close(self):
        m = machine()
        baseline = m.disk.allocated_blocks
        sorter = Sorter(m)
        sorter.consume(shuffled(1000, seed=4))
        pull = sorter.finish()
        next(pull)  # start but do not exhaust
        sorter.close()
        assert m.disk.allocated_blocks == baseline

    def test_bad_final_fan_in_rejected(self):
        m = machine()
        with pytest.raises(StreamError):
            Sorter(m, final_fan_in=0)

    def test_fused_beats_materialized_sort(self):
        """The pipelined sort elides the input write pass and the
        output materialization: strictly fewer I/Os end to end."""
        data = shuffled(3000, seed=5)

        fused_machine = machine()
        with fused_machine.measure() as fused_io:
            with Sorter(fused_machine) as sorter:
                sorter.consume(iter(data))
                result = list(sorter)

        mat_machine = machine()
        with mat_machine.measure() as mat_io:
            stream = FileStream(mat_machine, name="in")
            for record in data:
                stream.append(record)
            stream.finalize()
            out = external_merge_sort(mat_machine, stream,
                                      keep_input=False)
            mat_result = list(out)
            out.delete()

        assert result == mat_result == sorted(data)
        assert fused_io.total < mat_io.total

    def test_final_fan_in_one_matches_materialized_io(self):
        """Width 1 merges down to a single run and scans it — the
        graceful floor: exactly the materialized sort's pass
        structure, never worse."""
        data = shuffled(3000, seed=6)

        floor_machine = machine(B=16, m=8)
        with floor_machine.measure() as floor_io:
            with Sorter(floor_machine, final_fan_in=1) as sorter:
                sorter.consume(iter(data))
                assert list(sorter) == sorted(data)

        wide_machine = machine(B=16, m=8)
        with wide_machine.measure() as wide_io:
            with Sorter(wide_machine) as sorter:
                sorter.consume(iter(data))
                assert list(sorter) == sorted(data)

        # the capped pull pays one extra merge level (write + read)
        assert floor_io.total > wide_io.total


# ---------------------------------------------------------------------
# Pipeline
# ---------------------------------------------------------------------
class TestPipeline:
    def test_source_map_filter_sort_to_stream(self):
        m = machine()
        data = shuffled(1000, seed=7)
        out = (Pipeline.source(m, data)
               .filter(lambda x: x % 3 == 0)
               .map(lambda x: x * 2)
               .sort()
               .to_stream())
        expected = sorted(x * 2 for x in data if x % 3 == 0)
        assert list(out) == expected
        out.delete()

    def test_scan_external_source(self):
        m = machine()
        data = shuffled(600, seed=8)
        stream = FileStream.from_records(m, data)
        total = Pipeline.scan(m, stream).reduce(lambda a, b: a + b, 0)
        assert total == sum(data)
        stream.delete()

    def test_flat_map(self):
        m = machine()
        out = (Pipeline.source(m, range(10))
               .flat_map(lambda x: [x, x])
               .reduce(lambda a, b: a + b, 0))
        assert out == 2 * sum(range(10))

    def test_flat_map_before_sort_binds_its_stage(self):
        # Regression: the lazy flat_map expansion must capture its own
        # callable — a later sort stage rebinds the build loop's stage
        # variable before the expansion is ever pulled.
        m = machine()
        out = list(Pipeline.source(m, [3, 1, 2])
                   .flat_map(lambda x: [x, 10 * x])
                   .sort()
                   .iterate())
        assert out == [1, 2, 3, 10, 20, 30]

    def test_to_exvector(self):
        m = machine()
        v = (Pipeline.source(m, shuffled(300, seed=9))
             .sort()
             .to_exvector())
        assert list(v) == list(range(300))
        assert v[0] == 0
        v.delete()

    def test_group_reduce(self):
        m = machine()
        data = [(i % 5, 1) for i in range(500)]
        groups = dict(
            Pipeline.source(m, data)
            .group_reduce(key=lambda r: r[0],
                          fn=lambda acc, r: acc + r[1],
                          initial=lambda: 0)
            .iterate()
        )
        assert groups == {k: 100 for k in range(5)}

    def test_merge_join(self):
        m = machine()
        left = [(k, f"l{k}") for k in shuffled(50, seed=10)]
        right = [(k % 50, f"r{k}") for k in shuffled(150, seed=11)]
        joined = list(
            Pipeline.source(m, left).sort(key=lambda r: r[0])
            .merge_join(
                Pipeline.source(m, right).sort(key=lambda r: r[0]),
                left_key=lambda r: r[0],
                right_key=lambda r: r[0],
            )
            .iterate()
        )
        expected = sorted(
            (l, r) for l in left for r in right if l[0] == r[0]
        )
        assert sorted(joined) == expected

    def test_single_shot(self):
        m = machine()
        p = Pipeline.source(m, range(10))
        p.reduce(lambda a, b: a + b, 0)
        with pytest.raises(ConfigurationError):
            p.reduce(lambda a, b: a + b, 0)

    def test_no_source_rejected(self):
        m = machine()
        with pytest.raises(ConfigurationError):
            Pipeline(m).to_stream()

    def test_abandoned_iterator_cleans_up(self):
        m = machine()
        baseline = m.disk.allocated_blocks
        it = Pipeline.source(m, shuffled(1000, seed=12)).sort().iterate()
        next(it)
        it.close()
        assert m.disk.allocated_blocks == baseline

    def test_fusion_skips_intermediate_io(self):
        """scan → map → sort fused vs. map-to-stream then sort: the
        fused chain never writes the mapped intermediate."""
        data = shuffled(2000, seed=13)

        fused_machine = machine()
        source = FileStream.from_records(fused_machine, data)
        with fused_machine.measure() as fused_io:
            out = (Pipeline.scan(fused_machine, source)
                   .map(lambda x: x + 1)
                   .sort()
                   .to_stream())
        assert list(out) == sorted(x + 1 for x in data)

        mat_machine = machine()
        mat_source = FileStream.from_records(mat_machine, data)
        with mat_machine.measure() as mat_io:
            mapped = FileStream(mat_machine, name="mapped")
            for record in mat_source:
                mapped.append(record + 1)
            mapped.finalize()
            ordered = external_merge_sort(mat_machine, mapped,
                                          keep_input=False)
        assert list(ordered) == sorted(x + 1 for x in data)
        assert fused_io.total < mat_io.total


# ---------------------------------------------------------------------
# Fused/materialized parity of the refactored consumers
# ---------------------------------------------------------------------
class TestParity:
    def test_join_parity(self):
        m = machine()
        build, probe = foreign_key_relations(40, 600, seed=1)
        left = Table.from_rows(m, ("k", "b"), build, name="l")
        right = Table.from_rows(m, ("k", "p"), probe, name="r")
        fused = sort_merge_join(left, right, "k", "k", name="f")
        control = sort_merge_join_materialized(
            left, right, "k", "k", name="c"
        )
        assert list(fused.rows()) == list(control.rows())

    def test_timeforward_parity(self):
        m = machine()
        edges = random_dag(300, seed=2)

        def compute(v, incoming):
            return v + sum(incoming)

        assert (time_forward_process(m, 300, edges, compute)
                == time_forward_process_materialized(
                    m, 300, list(edges), compute))

    def test_list_ranking_parity(self):
        m = machine()
        pairs = random_linked_list(800, seed=3)
        assert (list_ranking(m, pairs, seed=4)
                == list_ranking_materialized(m, pairs, seed=4))

    def test_join_parity_under_faults(self):
        m = machine()
        build, probe = foreign_key_relations(30, 400, seed=5)
        left = Table.from_rows(m, ("k", "b"), build, name="l")
        right = Table.from_rows(m, ("k", "p"), probe, name="r")
        control = sort_merge_join_materialized(
            left, right, "k", "k", name="c"
        )
        with m.inject_faults(FaultPlan(seed=7, read_error_rate=0.05,
                                       write_error_rate=0.02)):
            fused = sort_merge_join(left, right, "k", "k", name="f")
        assert list(fused.rows()) == list(control.rows())
        assert m.stats().faults > 0

    def test_list_ranking_parity_under_faults(self):
        m = machine()
        pairs = random_linked_list(500, seed=8)
        expected = list_ranking_materialized(m, pairs, seed=9)
        with m.inject_faults(FaultPlan(seed=11, read_error_rate=0.05)):
            ranked = list_ranking(m, pairs, seed=9)
        assert ranked == expected
        assert m.stats().faults > 0

    def test_weighted_ranking_against_prefix_sums(self):
        m = machine()
        pairs = random_linked_list(300, seed=12)
        rng = random.Random(13)
        weights = {node: rng.randrange(1, 9) for node, _ in pairs}
        triples = [(node, succ, weights[node]) for node, succ in pairs]
        ranks = weighted_list_ranking(m, triples, seed=14)
        order = sorted(list_ranking(m, pairs, seed=15).items(),
                       key=lambda kv: kv[1])
        prefix, expected = 0, {}
        for node, _ in order:
            expected[node] = prefix
            prefix += weights[node]
        assert ranks == expected


# ---------------------------------------------------------------------
# Fusion wins on measured I/O
# ---------------------------------------------------------------------
class TestFusionSavesIO:
    def test_join_fused_beats_materialized(self):
        # m=32: the final-merge width covers each side's runs, so no
        # materialized pass survives and both sorted outputs are
        # elided.  (On smaller machines the frame plan degrades to the
        # materialized pass structure — equal I/O, never worse.)
        build, probe = foreign_key_relations(50, 1500, seed=21)

        fused_machine = machine(m=32)
        fl = Table.from_rows(fused_machine, ("k", "b"), build, name="l")
        fr = Table.from_rows(fused_machine, ("k", "p"), probe, name="r")
        with fused_machine.measure() as fused_io:
            sort_merge_join(fl, fr, "k", "k", name="f")

        mat_machine = machine(m=32)
        ml = Table.from_rows(mat_machine, ("k", "b"), build, name="l")
        mr = Table.from_rows(mat_machine, ("k", "p"), probe, name="r")
        with mat_machine.measure() as mat_io:
            sort_merge_join_materialized(ml, mr, "k", "k", name="c")

        assert fused_io.total < mat_io.total

    def test_timeforward_fused_beats_materialized(self):
        edges = random_dag(800, seed=22)

        def compute(v, incoming):
            return 1 + max(incoming) if incoming else 0

        fused_machine = machine()
        with fused_machine.measure() as fused_io:
            time_forward_process(fused_machine, 800, iter(edges), compute)

        mat_machine = machine()
        with mat_machine.measure() as mat_io:
            time_forward_process_materialized(
                mat_machine, 800, iter(edges), compute)

        assert fused_io.total < mat_io.total

    def test_list_ranking_fused_beats_materialized(self):
        pairs = random_linked_list(1200, seed=23)

        fused_machine = machine()
        with fused_machine.measure() as fused_io:
            list_ranking(fused_machine, pairs, seed=24)

        mat_machine = machine()
        with mat_machine.measure() as mat_io:
            list_ranking_materialized(mat_machine, pairs, seed=24)

        assert fused_io.total < mat_io.total


# ---------------------------------------------------------------------
# Disk-footprint regression (satellite: reclaim temps eagerly)
# ---------------------------------------------------------------------
class TestRecursionFootprint:
    def test_list_ranking_peak_blocks_bounded(self, monkeypatch):
        """Each contraction round keeps only its ``removed`` and
        ``contracted`` streams live while recursing, so the peak disk
        footprint across all depths is a geometric series in N/B — it
        must not grow with a per-round constant times depth (the old
        never-deleted ``removed_index`` failure mode)."""
        import importlib

        # the package re-exports the function under the module's name,
        # so fetch the module itself for monkeypatching
        lr = importlib.import_module("repro.graph.list_ranking")

        m = machine(B=16, m=8)
        n = 1500
        pairs = random_linked_list(n, seed=31)

        peak = {"blocks": 0, "depth": 0, "calls": 0}
        original = lr._rank_recursive

        def instrumented(mach, records, salt):
            peak["calls"] += 1
            peak["depth"] = max(peak["depth"], peak["calls"])
            peak["blocks"] = max(peak["blocks"],
                                 mach.disk.allocated_blocks)
            return original(mach, records, salt)

        monkeypatch.setattr(lr, "_rank_recursive", instrumented)
        ranked = lr.list_ranking(m, pairs, seed=32)
        assert len(ranked) == n

        assert peak["depth"] >= 3  # the instrument saw real recursion
        blocks_n = -(-n // 16)  # input size in blocks
        # Geometric series: the input plus each depth's live
        # (removed + contracted) pair sums to ~(1 + 1/p)·N/B blocks
        # where p is the per-round removal fraction (~1/4 ideally,
        # a bit lower with hash coins), i.e. ~5.5x in practice; 7x
        # allows for coin variance while staying far below the
        # never-deleted-temps failure mode (one leaked stream per
        # round adds another full geometric series, ~9x+).
        assert peak["blocks"] <= 7 * blocks_n

"""Model-compliance suite: algorithms at their minimum memory.

The I/O model's value evaporates if an algorithm quietly holds more than
``M`` records in RAM.  Every reservation goes through the machine's
budget, which raises on overflow — so simply *running* each algorithm on
a minimum-sized machine proves it lives within its documented memory
footprint (and produces correct output while doing so).  Below the
documented minimum, algorithms must fail with a clear
``ConfigurationError``, not a confusing crash.
"""

import pytest

from repro.core import ConfigurationError, FileStream, Machine
from repro.buffer import BufferTree
from repro.geometry import dominance_counts, segment_intersections
from repro.relational import (
    Table,
    block_nested_loop_join,
    grace_hash_join,
    sort_merge_join,
)
from repro.search import BPlusTree, ExtendibleHashTable
from repro.sort import (
    distribution_sort,
    external_merge_sort,
    external_string_sort,
    form_runs_replacement_selection,
)
from repro.workloads import distinct_ints, foreign_key_relations


class TestMinimumMemoryOperation:
    """Each algorithm completes correctly at its documented minimum m."""

    def test_merge_sort_with_three_frames(self):
        m = Machine(block_size=8, memory_blocks=3)
        data = distinct_ints(500, seed=1)
        out = external_merge_sort(m, FileStream.from_records(m, data))
        assert list(out) == sorted(data)
        assert m.budget.peak <= m.M

    def test_merge_sort_degrades_to_more_passes_not_more_memory(self):
        data = distinct_ints(2_000, seed=2)
        m_small = Machine(block_size=8, memory_blocks=3)
        with m_small.measure() as io_small:
            external_merge_sort(
                m_small, FileStream.from_records(m_small, data)
            )
        m_big = Machine(block_size=8, memory_blocks=32)
        with m_big.measure() as io_big:
            external_merge_sort(m_big, FileStream.from_records(m_big, data))
        assert io_small.total > io_big.total  # paid in passes
        assert m_small.budget.peak <= m_small.M

    def test_replacement_selection_minimum(self):
        m = Machine(block_size=8, memory_blocks=3)
        data = distinct_ints(300, seed=3)
        runs = form_runs_replacement_selection(
            m, FileStream.from_records(m, data)
        )
        assert sorted(x for r in runs for x in r) == sorted(data)
        assert m.budget.peak <= m.M

    def test_distribution_sort_minimum(self):
        m = Machine(block_size=8, memory_blocks=6)
        data = distinct_ints(600, seed=4)
        out = distribution_sort(m, FileStream.from_records(m, data))
        assert list(out) == sorted(data)
        assert m.budget.peak <= m.M

    def test_string_sort_minimum(self):
        m = Machine(block_size=8, memory_blocks=6)
        words = [f"w{i % 7}{i % 13}" for i in range(500)]
        out = external_string_sort(m, FileStream.from_records(m, words))
        assert list(out) == sorted(words)

    def test_buffer_tree_minimum(self):
        m = Machine(block_size=8, memory_blocks=6)
        tree = BufferTree(m)
        keys = distinct_ints(400, seed=5)
        for k in keys:
            tree.insert(k, k)
        assert [k for k, _ in tree.items()] == sorted(keys)
        assert m.budget.peak <= m.M

    def test_joins_minimum(self):
        for join in (sort_merge_join, grace_hash_join,
                     block_nested_loop_join):
            m = Machine(block_size=8, memory_blocks=6)
            build, probe = foreign_key_relations(40, 200, seed=6)
            left = Table.from_rows(m, ("id", "b"), build)
            right = Table.from_rows(m, ("fk", "p"), probe)
            result = join(left, right, "id", "fk")
            assert len(result) == 200
            assert m.budget.peak <= m.M

    def test_sweep_minimum(self):
        m = Machine(block_size=8, memory_blocks=9)
        hs = [(y, 0, 50) for y in range(0, 200, 2)]
        vs = [(x, 0, 199) for x in range(0, 50, 5)]
        out = segment_intersections(m, hs, vs)
        assert len(out) == 100 * 10
        assert m.budget.peak <= m.M

    def test_dominance_minimum(self):
        m = Machine(block_size=8, memory_blocks=8)
        points = [(i % 37, i % 53) for i in range(400)]
        queries = [(20, 30), (50, 50)]
        result = dominance_counts(m, points, queries)
        expected = {
            j: sum(1 for px, py in points if px <= qx and py <= qy)
            for j, (qx, qy) in enumerate(queries)
        }
        assert result == expected

    def test_search_structures_on_two_frame_pool(self):
        m = Machine(block_size=8, memory_blocks=2)
        tree = BPlusTree(m)
        table = ExtendibleHashTable(m)
        for k in range(300):
            tree.insert(k, k)
            table.insert(k, k)
        assert tree.get(123) == 123
        assert table.get(256) == 256
        tree.check_invariants()


class TestBelowMinimumFailsCleanly:
    """Below documented minimums: a ConfigurationError, never a crash."""

    def test_machine_needs_two_frames(self):
        with pytest.raises(ConfigurationError):
            Machine(block_size=8, memory_blocks=1)

    def test_replacement_selection_below_minimum(self):
        m = Machine(block_size=8, memory_blocks=2)
        with pytest.raises(ConfigurationError):
            form_runs_replacement_selection(m, FileStream(m).finalize())

    def test_distribution_sort_below_minimum(self):
        m = Machine(block_size=8, memory_blocks=5)
        with pytest.raises(ConfigurationError):
            distribution_sort(m, FileStream(m).finalize())

    def test_string_sort_below_minimum(self):
        m = Machine(block_size=8, memory_blocks=5)
        with pytest.raises(ConfigurationError):
            external_string_sort(m, FileStream(m).finalize())

    def test_sweep_below_minimum(self):
        m = Machine(block_size=8, memory_blocks=8)
        with pytest.raises(ConfigurationError):
            segment_intersections(m, [(0, 0, 1)], [])

    def test_dominance_below_minimum(self):
        m = Machine(block_size=8, memory_blocks=7)
        with pytest.raises(ConfigurationError):
            dominance_counts(m, [(1, 1)], [(2, 2)])

    def test_budget_peak_is_tracked_for_reporting(self):
        m = Machine(block_size=8, memory_blocks=4)
        data = distinct_ints(400, seed=7)
        external_merge_sort(m, FileStream.from_records(m, data))
        assert 0 < m.budget.peak <= m.M
        assert m.budget.in_use == 0

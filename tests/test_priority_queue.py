"""Tests for the external priority queue and its B-tree baseline."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ConfigurationError, EMError, Machine, sort_io
from repro.pq import BTreePriorityQueue, ExternalPriorityQueue


def machine(B=16, m=16):
    return Machine(block_size=B, memory_blocks=m)


class TestSequenceHeap:
    def test_insert_delete_min_sorted(self):
        m = machine()
        with ExternalPriorityQueue(m) as pq:
            rng = random.Random(1)
            values = [rng.randrange(10**6) for _ in range(3000)]
            for v in values:
                pq.insert(v)
            drained = [pq.delete_min()[0] for _ in range(len(values))]
        assert drained == sorted(values)

    def test_items_carried_with_priorities(self):
        m = machine()
        with ExternalPriorityQueue(m) as pq:
            pq.insert(3, "c")
            pq.insert(1, "a")
            pq.insert(2, "b")
            assert pq.delete_min() == (1, "a")
            assert pq.delete_min() == (2, "b")
            assert pq.delete_min() == (3, "c")

    def test_fifo_among_equal_priorities(self):
        m = machine()
        with ExternalPriorityQueue(m) as pq:
            for i in range(100):
                pq.insert(5, i)
            assert [pq.delete_min()[1] for _ in range(100)] == list(range(100))

    def test_peek_does_not_remove(self):
        m = machine()
        with ExternalPriorityQueue(m) as pq:
            pq.insert(4, "x")
            assert pq.peek_min() == (4, "x")
            assert len(pq) == 1
            assert pq.delete_min() == (4, "x")

    def test_empty_delete_raises(self):
        m = machine()
        with ExternalPriorityQueue(m) as pq:
            with pytest.raises(EMError):
                pq.delete_min()

    def test_empty_peek_raises(self):
        m = machine()
        with ExternalPriorityQueue(m) as pq:
            with pytest.raises(EMError):
                pq.peek_min()

    def test_interleaved_insert_delete(self):
        """Inserts with priorities below already-deleted minima must still
        surface correctly (monotone violation handled by the heap)."""
        m = machine()
        with ExternalPriorityQueue(m) as pq:
            import heapq

            reference = []
            rng = random.Random(3)
            drained = []
            expected = []
            for _ in range(4000):
                if reference and rng.random() < 0.45:
                    expected.append(heapq.heappop(reference)[0])
                    drained.append(pq.delete_min()[0])
                else:
                    v = rng.randrange(10**6)
                    heapq.heappush(reference, (v,))
                    pq.insert(v)
            while reference:
                expected.append(heapq.heappop(reference)[0])
                drained.append(pq.delete_min()[0])
            assert drained == expected

    def test_spills_create_disk_levels(self):
        # Frames: the insertion heap plus one per live on-disk run, so
        # memory must cover the run fan-out across levels.
        m = machine(B=8, m=16)
        with ExternalPriorityQueue(m, insertion_capacity=16) as pq:
            for i in range(500):
                pq.insert(i)
            assert pq.num_levels >= 1
            assert m.disk.allocated_blocks > 0

    def test_close_releases_budget_and_disk(self):
        m = machine()
        pq = ExternalPriorityQueue(m, insertion_capacity=16)
        for i in range(500):
            pq.insert(i)
        pq.close()
        assert m.budget.in_use == 0
        assert m.disk.allocated_blocks == 0

    def test_close_releases_frames_after_exception(self):
        """Reader frames pinned by open runs are released by close()
        deterministically (not left to GC), even when the algorithm
        using the queue dies mid-drain."""
        m = machine()
        with pytest.raises(RuntimeError):
            with ExternalPriorityQueue(m, insertion_capacity=16) as pq:
                rng = random.Random(4)
                for _ in range(2000):
                    pq.insert(rng.randrange(1000))
                for _ in range(100):  # open several run readers
                    pq.delete_min()
                raise RuntimeError("algorithm died mid-use")
        assert m.budget.in_use == 0
        assert m.disk.allocated_blocks == 0

    def test_frame_budget_with_many_runs_and_resident_frame(self):
        """Regression for the bench_f19 n=8000 overflow: every open
        on-disk run pins a reader frame, and with a caller-resident
        frame (the SSSP distance table) plus the insertion heap, run
        proliferation pushed peak memory past M.  The queue now merges
        levels early when spare frames run out."""
        m = machine(B=64, m=16)
        m.budget.acquire(64)  # caller-resident frame, as in sssp
        try:
            rng = random.Random(20)
            with ExternalPriorityQueue(m) as pq:
                pending = 0
                # ~32k queue inserts is what Dijkstra over the n=8000,
                # avg-degree-6 benchmark graph performs: enough spills
                # for three run levels plus a cascading merge.
                for i in range(32000):
                    pq.insert(rng.randrange(10**6), i)
                    pending += 1
                    # Dijkstra-like interleaving: occasional deletes
                    # keep run readers open across spills.
                    if i % 5 == 4:
                        pq.delete_min()
                        pending -= 1
                drained = [pq.delete_min()[0] for _ in range(pending)]
            assert drained == sorted(drained)
            assert m.budget.peak <= m.M
            assert m.budget.in_use == 64
        finally:
            m.budget.release(64)

    def test_operations_after_close_rejected(self):
        m = machine()
        pq = ExternalPriorityQueue(m)
        pq.close()
        with pytest.raises(EMError):
            pq.insert(1)

    def test_close_is_idempotent(self):
        m = machine()
        pq = ExternalPriorityQueue(m)
        pq.close()
        pq.close()

    def test_faulted_close_retry_does_not_double_release(self):
        """Regression (EM303): close() used to release the insertion
        reservation *before* closing the runs and flip ``_closed`` only
        at the very end, so a run teardown fault left the flag unset —
        a retried close() (the standard cleanup idiom) then released
        the reservation a second time, silently stealing frames from
        whichever component held them.  The flag now flips first and
        the release sits in a ``finally``, so the retry is a no-op."""
        m = machine()
        bystander = 40  # another component's live reservation
        m.budget.acquire(bystander)
        try:
            pq = ExternalPriorityQueue(m, insertion_capacity=16)
            for i in range(500):
                pq.insert(i)
            victim = next(
                run for level in pq._levels for run in level
            )
            original_delete = victim.stream.delete

            def faulting_delete():
                raise OSError("transient device fault during teardown")

            victim.stream.delete = faulting_delete
            with pytest.raises(OSError):
                pq.close()
            victim.stream.delete = original_delete
            in_use_after_fault = m.budget.in_use
            pq.close()  # retry must pass the guard as a no-op
            assert m.budget.in_use == in_use_after_fault
        finally:
            # The bystander's reservation was never touched.
            m.budget.release(bystander)

    def test_bad_arity_rejected(self):
        with pytest.raises(ConfigurationError):
            ExternalPriorityQueue(machine(), group_arity=1)

    def test_io_near_sort_bound(self):
        m = machine()
        rng = random.Random(5)
        values = [rng.randrange(10**6) for _ in range(5000)]
        with ExternalPriorityQueue(m) as pq:
            with m.measure() as io:
                for v in values:
                    pq.insert(v)
                for _ in values:
                    pq.delete_min()
        assert io.total <= 3 * sort_io(len(values), m.M, m.B)

    @given(st.lists(st.integers(-10**9, 10**9), max_size=400))
    @settings(max_examples=25, deadline=None)
    def test_property_heapsort_equivalence(self, values):
        m = machine(B=8, m=12)
        with ExternalPriorityQueue(m, insertion_capacity=8) as pq:
            for v in values:
                pq.insert(v)
            drained = [pq.delete_min()[0] for _ in range(len(values))]
        assert drained == sorted(values)


class TestBTreePQ:
    def test_sorted_drain(self):
        m = machine()
        pq = BTreePriorityQueue(m)
        rng = random.Random(2)
        values = [rng.randrange(10**6) for _ in range(800)]
        for v in values:
            pq.insert(v)
        assert [pq.delete_min()[0] for _ in values] == sorted(values)

    def test_fifo_among_equal_priorities(self):
        m = machine()
        pq = BTreePriorityQueue(m)
        for i in range(50):
            pq.insert(1, i)
        assert [pq.delete_min()[1] for _ in range(50)] == list(range(50))

    def test_empty_raises(self):
        pq = BTreePriorityQueue(machine())
        with pytest.raises(EMError):
            pq.delete_min()
        with pytest.raises(EMError):
            pq.peek_min()

    def test_peek(self):
        pq = BTreePriorityQueue(machine())
        pq.insert(9, "z")
        pq.insert(2, "a")
        assert pq.peek_min() == (2, "a")
        assert len(pq) == 2

    def test_sequence_heap_beats_btree_pq(self):
        """The headline claim: batched PQ ops cost a small fraction of
        per-operation tree searches."""
        rng = random.Random(4)
        values = [rng.randrange(10**6) for _ in range(3000)]
        m1 = machine(m=16)
        with ExternalPriorityQueue(m1) as pq:
            with m1.measure() as io_seq:
                for v in values:
                    pq.insert(v)
                for _ in values:
                    pq.delete_min()
        m2 = machine(m=16)
        bpq = BTreePriorityQueue(m2)
        with m2.measure() as io_btree:
            for v in values:
                bpq.insert(v)
            for _ in values:
                bpq.delete_min()
        assert io_seq.total * 3 < io_btree.total
